//! # fompi-fabric — a software RDMA fabric
//!
//! This crate is the hardware substitute for the foMPI paper's two low-level
//! transports:
//!
//! * **DMAPP** (Cray Gemini/Aries user-level RDMA): remote put/get and a
//!   small set of 8-byte atomic memory operations (AMOs), each available in
//!   *blocking*, *explicit nonblocking* (returns a [`NbHandle`]) and
//!   *implicit nonblocking* (completed in bulk by [`Endpoint::gsync`])
//!   flavours — exactly the DMAPP completion taxonomy described in §2.1 of
//!   the paper.
//! * **XPMEM** (Linux kernel module mapping remote process memory): ranks in
//!   this simulation are threads of one address space, so an "attached"
//!   segment is simply a direct view ([`xpmem::MappedView`]) on which loads,
//!   stores and CPU atomics operate.
//!
//! Data movement is **real** — a put genuinely deposits bytes into the
//! target's registered segment, AMOs use genuine CPU atomics, so all
//! protocol code built on top is exercised for correctness. Time, however,
//! is **virtual**: every operation advances the origin rank's
//! [`clock::Clock`] according to a calibrated LogGP-style
//! [`cost::CostModel`] whose default constants come from the
//! paper's measured performance functions (Pput = 0.16 ns/B + 1 µs, etc.).
//! Synchronisation words carry companion timestamps ([`clock::StampCell`])
//! so that a rank blocking on a remote event observes
//! `max(own clock, writer clock + latency)` — a conservative Lamport scheme
//! that preserves the *shape* of the paper's latency figures without the
//! actual Cray.
//!
//! ## Memory safety
//!
//! Registered segments are concurrently read and written by many threads
//! with no locks, as RDMA hardware would. [`segment::Segment`] therefore
//! stores bytes in atomic cells (see its module docs for the exact aliasing
//! rules); races yield nondeterministic *values* — an application-level MPI
//! error — but never undefined behaviour.

pub mod amo;
pub mod batch;
pub mod clock;
pub mod cost;
pub mod counters;
pub mod endpoint;
pub mod error;
pub mod faults;
pub mod mc;
pub mod metrics;
pub mod notify;
pub mod profile;
pub mod rng;
pub mod segment;
pub mod shadow;
pub mod shim;
pub mod stripes;
pub mod telemetry;
pub mod topology;
pub mod xpmem;

pub use amo::AmoOp;
pub use batch::{Burst, BurstKind};
pub use clock::{Clock, StampCell};
pub use cost::{CostModel, Transport};
pub use counters::{CounterSnapshot, Counters};
pub use endpoint::{Endpoint, NbHandle};
pub use error::FabricError;
pub use faults::{FaultKind, FaultParseError, FaultPlan, Faults};
pub use mc::{McGate, McObj, McOp};
pub use metrics::{snapshot as metrics_snapshot, MetricsSnapshot};
pub use notify::{notify_match, NotifyHub, NotifyQueue, NotifyRecord, NOTIFY_ANY};
pub use profile::{ProfileMode, Profiler};
pub use segment::{SegKey, Segment};
pub use shadow::{
    kinds_commute, AccessKind, AccessRecord, LockCtx, RaceClass, RaceViolation, RacecheckMode,
    Shadow, ACC_NOOP,
};
pub use stripes::{StripedHorizon, STRIPE_COUNT};
pub use telemetry::Telemetry;
pub use topology::Topology;

use shim::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The fabric: the shared "network + NIC registry" that all ranks attach to.
///
/// Holds the table of registered memory segments (the RDMA *memory
/// registration* state), the cost model, the node topology and global
/// operation counters. One `Fabric` is shared (via `Arc`) by every rank of a
/// job; per-rank state lives in [`Endpoint`].
pub struct Fabric {
    model: CostModel,
    topo: Topology,
    segs: RwLock<HashMap<SegKey, Arc<Segment>>>,
    next_id: AtomicU64,
    counters: Counters,
    telemetry: Telemetry,
    faults: Faults,
    batch_default: AtomicBool,
    notify: NotifyHub,
    shadow: Shadow,
    profiler: Profiler,
    metrics_on: AtomicBool,
    txn_retry: RwLock<Option<String>>,
    rmc: RwLock<Option<String>>,
    mc: RwLock<Option<Arc<dyn mc::McGate>>>,
    mc_armed: AtomicBool,
}

impl Fabric {
    /// Create a fabric for `p` ranks grouped `node_size` per node with the
    /// given cost model. Telemetry is configured from the environment
    /// (`FOMPI_TELEMETRY`, off by default — see [`telemetry`]); fault
    /// injection likewise (`FOMPI_FAULTS`, off by default — see [`faults`]).
    pub fn new(p: usize, node_size: usize, model: CostModel) -> Arc<Self> {
        Self::build(p, node_size, model, Telemetry::from_env(p), Faults::from_env(p))
    }

    /// Like [`Fabric::new`], but with tracing telemetry enabled
    /// programmatically: `ring_cap` events retained per rank.
    pub fn new_traced(p: usize, node_size: usize, model: CostModel, ring_cap: usize) -> Arc<Self> {
        Self::build(
            p,
            node_size,
            model,
            Telemetry::with_capacity(p, true, ring_cap),
            Faults::from_env(p),
        )
    }

    /// Fully-configured constructor: programmatic fault plan, optional
    /// tracing (`ring_cap` events per rank when `Some`). The runtime's
    /// `Universe` builder funnels through here.
    pub fn with_config(
        p: usize,
        node_size: usize,
        model: CostModel,
        ring_cap: Option<usize>,
        plan: Option<FaultPlan>,
    ) -> Arc<Self> {
        let telemetry = match ring_cap {
            Some(cap) => Telemetry::with_capacity(p, true, cap),
            None => Telemetry::from_env(p),
        };
        let faults = match plan {
            Some(plan) => Faults::new(p, plan),
            None => Faults::from_env(p),
        };
        Self::build(p, node_size, model, telemetry, faults)
    }

    fn build(
        p: usize,
        node_size: usize,
        model: CostModel,
        telemetry: Telemetry,
        faults: Faults,
    ) -> Arc<Self> {
        // `FOMPI_METRICS` arms the metrics plane; it needs the telemetry
        // aggregates (histograms feed the quantiles), so it also enables
        // them — the event rings stay at whatever capacity was chosen.
        let metrics_on = metrics_from_env();
        if metrics_on {
            telemetry.set_enabled(true);
        }
        // A profiling run arms the flight recorder: a crash mid-profile
        // should dump its last-N window.
        let profiler = Profiler::from_env();
        if profiler.mode() != ProfileMode::Off {
            telemetry.set_flight(true);
        }
        Arc::new(Self {
            model,
            topo: Topology::new(p, node_size),
            segs: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            counters: Counters::default(),
            telemetry,
            faults,
            batch_default: AtomicBool::new(batch_from_env()),
            notify: NotifyHub::new(p, notify::depth_from_env()),
            shadow: Shadow::from_env(p),
            profiler,
            metrics_on: AtomicBool::new(metrics_on),
            txn_retry: RwLock::new(txn_retry_from_env()),
            rmc: RwLock::new(rmc_from_env()),
            mc: RwLock::new(None),
            mc_armed: AtomicBool::new(false),
        })
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Node topology (rank → node mapping).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Global operation counters (for scalability assertions in tests).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The telemetry hub (tracing, histograms, attribution).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The fault-injection hub (inert unless a plan is armed).
    pub fn faults(&self) -> &Faults {
        &self.faults
    }

    /// The wall-clock profiler (inert — one relaxed load per op — unless
    /// `FOMPI_PROFILE` or [`Fabric::set_profile`] arms it).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Set the profiling mode programmatically. Launch-time configuration
    /// only — the runtime's `Universe::profile` funnels through here,
    /// mirroring [`Fabric::set_batch_default`]. Arming also arms the
    /// telemetry flight recorder.
    pub fn set_profile(&self, mode: ProfileMode) {
        self.profiler.set_mode(mode);
        if mode != ProfileMode::Off {
            self.telemetry.set_flight(true);
        }
    }

    /// Is the metrics plane armed (`FOMPI_METRICS` /
    /// [`Fabric::set_metrics`])? Advisory: [`metrics::snapshot`] works
    /// regardless, but only an armed run has populated histograms.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics_on.load(Ordering::Relaxed)
    }

    /// Arm the metrics plane programmatically (enables the telemetry
    /// aggregates it feeds on). Launch-time configuration only — the
    /// runtime's `Universe::metrics` funnels through here.
    pub fn set_metrics(&self, on: bool) {
        self.metrics_on.store(on, Ordering::Relaxed);
        if on {
            self.telemetry.set_enabled(true);
        }
    }

    /// Whether endpoints created from now on start with issue-side batching
    /// enabled (see [`batch`]). Defaults to `FOMPI_BATCH` (off when unset);
    /// each [`Endpoint`] snapshots this at creation and can still toggle
    /// itself with [`Endpoint::set_batching`].
    pub fn batch_default(&self) -> bool {
        self.batch_default.load(Ordering::Relaxed)
    }

    /// Set the batching default for endpoints created after this call.
    pub fn set_batch_default(&self, on: bool) {
        self.batch_default.store(on, Ordering::Relaxed);
    }

    /// The notification hub: per-rank queues of notified-access records
    /// (see [`notify`]). Depth defaults to `FOMPI_NOTIFY_DEPTH`.
    pub fn notify(&self) -> &NotifyHub {
        &self.notify
    }

    /// Replace every notification ring with fresh ones of `depth` records.
    /// Launch-time configuration only (queued records are dropped) — the
    /// runtime's `Universe::notify_depth` funnels through here, mirroring
    /// [`Fabric::set_batch_default`].
    pub fn set_notify_depth(&self, depth: usize) {
        self.notify.set_depth(depth);
    }

    /// The racecheck hub (see [`shadow`]): inert — one relaxed load per
    /// op — unless `FOMPI_RACECHECK` or [`Fabric::set_racecheck`] arms it.
    pub fn shadow(&self) -> &Shadow {
        &self.shadow
    }

    /// Set the racecheck mode programmatically. Launch-time configuration
    /// only — the runtime's `Universe::racecheck` funnels through here,
    /// mirroring [`Fabric::set_batch_default`].
    pub fn set_racecheck(&self, mode: RacecheckMode) {
        self.shadow.set_mode(mode);
    }

    /// The transaction retry-policy spec in force (`FOMPI_TXN_RETRY` /
    /// [`Fabric::set_txn_retry`]), if any. The fabric only carries the
    /// string — the `fompi-txn` layer owns the grammar and parses it at
    /// policy-construction time.
    pub fn txn_retry(&self) -> Option<String> {
        self.txn_retry.read().clone()
    }

    /// Set the transaction retry-policy spec programmatically. Launch-time
    /// configuration only — the runtime's `Universe::txn_retry` funnels
    /// through here, mirroring [`Fabric::set_batch_default`].
    pub fn set_txn_retry(&self, spec: &str) {
        *self.txn_retry.write() = Some(spec.to_string());
    }

    /// The remote-memory-channel tuning spec in force (`FOMPI_RMC` /
    /// [`Fabric::set_rmc`]), if any. The fabric only carries the string —
    /// the `fompi-rmc` layer owns the grammar and parses it at
    /// channel-construction time.
    pub fn rmc(&self) -> Option<String> {
        self.rmc.read().clone()
    }

    /// Set the remote-memory-channel tuning spec programmatically.
    /// Launch-time configuration only — the runtime's `Universe::rmc`
    /// funnels through here, mirroring [`Fabric::set_txn_retry`].
    pub fn set_rmc(&self, spec: &str) {
        *self.rmc.write() = Some(spec.to_string());
    }

    /// Is a model-checker gate installed? One relaxed load — the entire
    /// ungated hot path (mirrors [`Shadow::active`]).
    #[inline]
    pub fn mc_armed(&self) -> bool {
        self.mc_armed.load(Ordering::Relaxed)
    }

    /// The installed model-checker gate, if any (see [`mc`]).
    pub fn mc_gate(&self) -> Option<Arc<dyn mc::McGate>> {
        self.mc.read().clone()
    }

    /// Install a model-checker gate. Launch-time configuration only —
    /// the runtime's `Universe::mc_gate` funnels through here, mirroring
    /// [`Fabric::set_racecheck`]. Once armed, every endpoint serializes
    /// its shared-state operations through the gate.
    pub fn set_mc_gate(&self, gate: Arc<dyn mc::McGate>) {
        *self.mc.write() = Some(gate);
        self.mc_armed.store(true, Ordering::Relaxed);
    }

    /// Register `seg` for remote access by rank `rank`. Returns the key
    /// remote peers use to address it — the analogue of the DMAPP
    /// registration descriptor.
    pub fn register(&self, rank: u32, seg: Arc<Segment>) -> SegKey {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let key = SegKey { rank, id };
        self.segs.write().insert(key, seg);
        key
    }

    /// Fallible registration: like [`Fabric::register`] but subject to
    /// transient [`FabricError::SegmentBusy`] failures under an armed
    /// fault plan — the realistic NIC behaviour the dynamic-window attach
    /// path must retry around (registration resources are finite on real
    /// hardware). Infallible when faults are disabled.
    pub fn try_register(&self, rank: u32, seg: Arc<Segment>) -> Result<SegKey, FabricError> {
        if let Some(retry_after_ns) = self.faults.draw_busy(rank) {
            return Err(FabricError::SegmentBusy { retry_after_ns });
        }
        Ok(self.register(rank, seg))
    }

    /// Register `seg` under a caller-chosen id (the *symmetric heap*
    /// protocol of §2.2: all ranks of a window agree on one id so remote
    /// descriptors need O(1) storage). Fails if the id is taken on this
    /// rank, mirroring the paper's mmap-retry loop.
    pub fn register_symmetric(
        &self,
        rank: u32,
        id: u64,
        seg: Arc<Segment>,
    ) -> Result<SegKey, FabricError> {
        let key = SegKey { rank, id };
        let mut segs = self.segs.write();
        if segs.contains_key(&key) {
            return Err(FabricError::KeyTaken(key));
        }
        segs.insert(key, seg);
        Ok(key)
    }

    /// Draw a fresh id from the global id space (used as the "random
    /// address" proposed by the symmetric-allocation leader).
    pub fn propose_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Deregister a segment. Remote accesses after this fail.
    pub fn deregister(&self, key: SegKey) {
        self.segs.write().remove(&key);
    }

    /// Resolve a key to its segment (what the NIC does on every request).
    pub fn resolve(&self, key: SegKey) -> Result<Arc<Segment>, FabricError> {
        self.segs.read().get(&key).cloned().ok_or(FabricError::UnknownKey(key))
    }

    /// Number of ranks in the job.
    pub fn num_ranks(&self) -> usize {
        self.topo.num_ranks()
    }

    /// Which transport connects `a` and `b`.
    pub fn transport(&self, a: u32, b: u32) -> Transport {
        if self.topo.same_node(a, b) {
            Transport::Xpmem
        } else {
            Transport::Dmapp
        }
    }
}

/// `FOMPI_BATCH` switch: `1`/`true`/`on` arms issue-side batching for every
/// endpoint of fabrics built afterwards.
fn batch_from_env() -> bool {
    matches!(
        std::env::var("FOMPI_BATCH").as_deref().map(str::trim),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// `FOMPI_TXN_RETRY` carrier: the raw retry-policy spec for the
/// `fompi-txn` layer (grammar documented there; e.g. `immediate:16` or
/// `backoff:64:400:100000`). Parsed lazily by the consumer so the fabric
/// stays ignorant of transaction semantics.
fn txn_retry_from_env() -> Option<String> {
    std::env::var("FOMPI_TXN_RETRY").ok().map(|s| s.trim().to_string()).filter(|s| !s.is_empty())
}

/// `FOMPI_RMC` carrier: the raw remote-memory-channel tuning spec for the
/// `fompi-rmc` layer (grammar documented there; e.g.
/// `slots=8,slot_bytes=256,lagging=drop,rpc_budget=4,rpc_timeout_ns=2000000`).
/// Parsed lazily by the consumer so the fabric stays ignorant of channel
/// semantics.
fn rmc_from_env() -> Option<String> {
    std::env::var("FOMPI_RMC").ok().map(|s| s.trim().to_string()).filter(|s| !s.is_empty())
}

/// `FOMPI_METRICS` switch: `1`/`true`/`on` arms the metrics plane (and the
/// telemetry aggregates it is computed from).
fn metrics_from_env() -> bool {
    matches!(
        std::env::var("FOMPI_METRICS").as_deref().map(str::trim),
        Ok("1") | Ok("true") | Ok("on")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_resolve_roundtrip() {
        let f = Fabric::new(4, 2, CostModel::default());
        let seg = Segment::new(128);
        let key = f.register(0, seg.clone());
        assert_eq!(key.rank, 0);
        let got = f.resolve(key).unwrap();
        assert!(Arc::ptr_eq(&seg, &got));
    }

    #[test]
    fn deregister_invalidates() {
        let f = Fabric::new(2, 1, CostModel::default());
        let key = f.register(1, Segment::new(8));
        f.deregister(key);
        assert!(matches!(f.resolve(key), Err(FabricError::UnknownKey(_))));
    }

    #[test]
    fn symmetric_registration_conflicts() {
        let f = Fabric::new(2, 2, CostModel::default());
        let id = f.propose_id();
        assert!(f.register_symmetric(0, id, Segment::new(8)).is_ok());
        // Same id on the same rank collides (forces the retry loop)...
        assert!(f.register_symmetric(0, id, Segment::new(8)).is_err());
        // ...but the same id on a different rank is the whole point.
        assert!(f.register_symmetric(1, id, Segment::new(8)).is_ok());
    }

    #[test]
    fn try_register_is_infallible_without_faults() {
        let f = Fabric::new(2, 1, CostModel::default());
        for _ in 0..100 {
            assert!(f.try_register(0, Segment::new(8)).is_ok());
        }
    }

    #[test]
    fn try_register_surfaces_transient_busy() {
        let plan = FaultPlan { busy_prob: 1.0, ..FaultPlan::heavy(13) };
        let f = Fabric::with_config(2, 1, CostModel::default(), None, Some(plan));
        match f.try_register(0, Segment::new(8)) {
            Err(FabricError::SegmentBusy { retry_after_ns }) => assert!(retry_after_ns > 0),
            other => panic!("expected SegmentBusy, got {other:?}"),
        }
    }

    #[test]
    fn transport_selection_follows_nodes() {
        let f = Fabric::new(8, 4, CostModel::default());
        assert_eq!(f.transport(0, 3), Transport::Xpmem);
        assert_eq!(f.transport(0, 4), Transport::Dmapp);
        assert_eq!(f.transport(5, 7), Transport::Xpmem);
    }
}
