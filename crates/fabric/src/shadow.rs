//! `fompi-check`: epoch-aware RMA race and synchronisation-misuse detector.
//!
//! The MPI-3 RMA memory model (§4.4 of the one-sided paper, MPI-3.0 §11.7)
//! declares *conflicting accesses inside one epoch* erroneous: two accesses
//! to overlapping bytes of a window, at least one of which writes, must be
//! separated by a synchronisation edge (fence round, PSCW post/wait,
//! lock hand-off, flush for same-origin ordering). Nothing at runtime
//! enforces this — the paper's protocols silently corrupt data instead.
//! This module is the dynamic checker: the window layer reports every
//! remote put/get/accumulate and every local load/store exposure, the sync
//! layer reports every epoch transition, and the checker classifies
//! overlapping shadow intervals as happens-before-ordered or conflicting.
//!
//! # Epoch clocks
//!
//! For every (window, target-rank) pair the checker keeps a *generation*
//! `gen`: an epoch id for the target's window memory. Two overlapping
//! accesses conflict only if they were recorded under the same generation;
//! any sync edge that orders "everything before" against "everything
//! after" bumps it:
//!
//! - `fence`: collective — every origin folds `round << 32` in with a
//!   max, so all ranks of one fence round agree on the new generation
//!   without masking conflicts *within* the round,
//! - `post` / `wait` / successful `test` (PSCW, target side),
//! - `unlock` / `unlock_all` / MCS hand-off (releasing a lock orders the
//!   session against the *next* acquirer),
//! - `win_sync`, and consuming a notification (`signal_wait`,
//!   `wait_notify` — the notified-access ordering guarantee).
//!
//! Same-origin ordering is finer: a rank's own put → flush → get to one
//! target is legal even inside one epoch, so each (origin, target) pair
//! also carries a *phase* bumped by flush/flush_local/complete. Two
//! same-origin accesses in the same generation are ordered iff their
//! phases differ (or both are accumulates — MPI orders same-origin
//! accumulates by default).
//!
//! Passive-target epochs sample the generation at *lock acquisition*, not
//! at each access: two shared-lock sessions that overlap in real time hold
//! the same generation and their conflicting accesses are flagged, while
//! a release + later acquire pair is ordered by the unlock bump.
//!
//! # What the checker can and cannot prove
//!
//! Detection is per-interleaving: it flags conflicts the *observed*
//! schedule actually exposed in a shared epoch, like ThreadSanitizer. A
//! clean run is evidence, not proof; a flagged run is always a real
//! memory-model violation (no false positives for programs that only use
//! the documented sync API). The checker never charges virtual time and
//! never draws randomness, so enabling it does not perturb the simulated
//! schedule or the byte-determinism gates.
//!
//! Gating follows [`crate::faults`]: `FOMPI_RACECHECK=report|panic|off`,
//! and the disabled hot path is a single relaxed load ([`Shadow::active`]).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use crate::shim::Mutex;

/// Checker mode, parsed from `FOMPI_RACECHECK`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RacecheckMode {
    /// Disabled (default): one relaxed load per op, nothing recorded.
    Off,
    /// Record and report violations (stderr + telemetry + counters).
    Report,
    /// As `Report`, then panic on the first violation.
    Panic,
}

impl RacecheckMode {
    /// Parse `FOMPI_RACECHECK`. Unset, empty, `off` and `0` disable;
    /// `report` and `panic` enable. Anything else is a loud error — a
    /// typo must never silently disable the checker.
    pub fn from_env() -> RacecheckMode {
        match std::env::var("FOMPI_RACECHECK") {
            Err(_) => RacecheckMode::Off,
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "" | "off" | "0" => RacecheckMode::Off,
                "report" | "1" | "on" => RacecheckMode::Report,
                "panic" => RacecheckMode::Panic,
                other => {
                    panic!("invalid FOMPI_RACECHECK: {other:?} (expected report, panic, or off)")
                }
            },
        }
    }

    fn from_u8(v: u8) -> RacecheckMode {
        match v {
            1 => RacecheckMode::Report,
            2 => RacecheckMode::Panic,
            _ => RacecheckMode::Off,
        }
    }
}

/// Accumulate-op tag for [`AccessKind::Acc`] marking `MPI_NO_OP`
/// (`get_accumulate`'s atomic read), which may overlap any other
/// accumulate per MPI-3.0 §11.7.1.
pub const ACC_NOOP: u16 = u16::MAX;

/// What an access did to the window bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Remote write (put, notified put, batched put burst).
    Put,
    /// Remote read (get, notified get).
    Get,
    /// Accumulate-family op; the tag identifies the reduction op so
    /// same-op overlap can be permitted (MPI-3.0 §11.7.1). [`ACC_NOOP`]
    /// marks the atomic-read carve-out.
    Acc(u16),
    /// Local load from the rank's own window memory.
    LocalRead,
    /// Local store to the rank's own window memory.
    LocalWrite,
}

impl AccessKind {
    /// Does this access modify window bytes? (Public for the model
    /// checker's conflict relation — see [`kinds_commute`].)
    pub fn writes(self) -> bool {
        match self {
            AccessKind::Put | AccessKind::LocalWrite => true,
            AccessKind::Acc(tag) => tag != ACC_NOOP,
            AccessKind::Get | AccessKind::LocalRead => false,
        }
    }

    fn is_local(self) -> bool {
        matches!(self, AccessKind::LocalRead | AccessKind::LocalWrite)
    }

    fn is_acc(self) -> bool {
        matches!(self, AccessKind::Acc(_))
    }

    /// Stable lower-case name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            AccessKind::Put => "put",
            AccessKind::Get => "get",
            AccessKind::Acc(ACC_NOOP) => "acc(no_op)",
            AccessKind::Acc(_) => "acc",
            AccessKind::LocalRead => "local-read",
            AccessKind::LocalWrite => "local-write",
        }
    }
}

/// Passive-target lock held by the origin when the access was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockCtx {
    /// No passive-target lock (fence/PSCW epoch).
    NoLock,
    /// `MPI_LOCK_SHARED` (or `lock_all`).
    Shared,
    /// `MPI_LOCK_EXCLUSIVE`.
    Exclusive,
}

impl LockCtx {
    fn name(self) -> &'static str {
        match self {
            LockCtx::NoLock => "no-lock",
            LockCtx::Shared => "shared-lock",
            LockCtx::Exclusive => "excl-lock",
        }
    }
}

/// One shadow record: who touched which bytes of a target's window, how,
/// and under which epoch clock values.
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// Issuing rank (for local accesses, the window owner itself).
    pub origin: u32,
    /// Byte interval `[lo, hi)` in the target's window segment.
    pub lo: usize,
    /// Exclusive upper bound of the interval.
    pub hi: usize,
    /// Access class.
    pub kind: AccessKind,
    /// Generation of the (window, target) epoch clock when recorded (for
    /// passive-target sessions: when the lock was acquired).
    pub epoch: u64,
    /// Same-origin flush phase when recorded.
    pub phase: u64,
    /// Lock held by the origin, if any.
    pub lock: LockCtx,
    /// Virtual-time issue span start (origin clock, ns).
    pub t_start: f64,
    /// Virtual-time issue span end.
    pub t_end: f64,
    /// Causal flow id active on the origin when the access was issued
    /// ([`crate::telemetry::NO_FLOW`] when none) — lets a race report
    /// point at the exact Perfetto arcs the two accesses rode.
    pub flow: u64,
}

impl fmt::Display for AccessRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by rank {} at [{}, {}) epoch {}.{} phase {} flow {} ({}, t {:.1}..{:.1})",
            self.kind.name(),
            self.origin,
            self.lo,
            self.hi,
            self.epoch >> 32,
            self.epoch & 0xffff_ffff,
            self.phase,
            self.flow,
            self.lock.name(),
            self.t_start,
            self.t_end,
        )
    }
}

/// Violation classes the checker distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RaceClass {
    /// Two overlapping writes (put/put) in one epoch.
    PutPut,
    /// Overlapping write and read (put/get) in one epoch — includes the
    /// same-origin "use a get target before flush" shape.
    PutGet,
    /// Accumulate overlapping a non-atomic put/get.
    AccMixed,
    /// Two accumulates with different (non-`MPI_NO_OP`) ops.
    AccOps,
    /// Local load/store conflicting with a remote access (separate
    /// memory model).
    LocalRace,
    /// Conflicting remote accesses where both origins held only shared
    /// locks (exclusive was required).
    LockMode,
    /// Access to a freed window, or `free` with an epoch still open.
    UseAfterFree,
}

impl RaceClass {
    /// Number of distinct classes (size of the counter block).
    pub const COUNT: usize = 7;

    /// All classes, in `index` order.
    pub const ALL: [RaceClass; RaceClass::COUNT] = [
        RaceClass::PutPut,
        RaceClass::PutGet,
        RaceClass::AccMixed,
        RaceClass::AccOps,
        RaceClass::LocalRace,
        RaceClass::LockMode,
        RaceClass::UseAfterFree,
    ];

    /// Dense index for the counter block.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-case name (used in reports and test assertions).
    pub fn name(self) -> &'static str {
        match self {
            RaceClass::PutPut => "put_put",
            RaceClass::PutGet => "put_get",
            RaceClass::AccMixed => "acc_mixed",
            RaceClass::AccOps => "acc_ops",
            RaceClass::LocalRace => "local_race",
            RaceClass::LockMode => "lock_mode",
            RaceClass::UseAfterFree => "use_after_free",
        }
    }
}

/// A detected violation: the two conflicting records plus where they
/// overlap.
#[derive(Debug, Clone)]
pub struct RaceViolation {
    /// Violation class.
    pub class: RaceClass,
    /// Window id (symmetric meta id, as in telemetry events).
    pub win: u64,
    /// Overlap interval `[lo, hi)`.
    pub lo: usize,
    /// Exclusive upper bound of the overlap.
    pub hi: usize,
    /// The earlier-recorded access.
    pub a: AccessRecord,
    /// The later-recorded access (the one that tripped the check).
    pub b: AccessRecord,
}

impl fmt::Display for RaceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.class == RaceClass::UseAfterFree {
            return write!(
                f,
                "racecheck[{}] win {}: {}; window freed by rank {} at t {:.1}",
                self.class.name(),
                self.win,
                self.b,
                self.a.origin,
                self.a.t_end,
            );
        }
        write!(
            f,
            "racecheck[{}] win {} bytes [{}, {}): {} vs {}",
            self.class.name(),
            self.win,
            self.lo,
            self.hi,
            self.a,
            self.b,
        )
    }
}

/// Per-(window, target-rank) epoch clock and shadow interval list.
#[derive(Debug)]
struct TargetShadow {
    /// Current generation.
    gen: u64,
    /// Per-origin flush phase.
    phases: Vec<u64>,
    /// Per-origin lock-session generation (sampled at acquisition).
    session: Vec<Option<u64>>,
    /// Shadow records of still-conflictable epochs (purged lazily against
    /// the epoch floor, see [`TargetShadow::floor`]).
    records: Vec<AccessRecord>,
}

impl TargetShadow {
    fn new(p: usize) -> TargetShadow {
        TargetShadow { gen: 0, phases: vec![0; p], session: vec![None; p], records: Vec::new() }
    }

    /// Lowest epoch a new record could still be stamped with: the current
    /// generation, or an open session's pinned epoch if older. Records
    /// below the floor can never conflict again and are purged.
    fn floor(&self) -> u64 {
        self.session.iter().flatten().fold(self.gen, |f, &s| f.min(s))
    }

    fn bump(&mut self) {
        self.gen += 1;
    }
}

/// Per-window shadow state.
#[derive(Debug)]
struct WinShadow {
    targets: Vec<TargetShadow>,
    /// Per-origin fence round (folded into generations as `round << 32`).
    rounds: Vec<u64>,
}

impl WinShadow {
    fn new(p: usize) -> WinShadow {
        WinShadow { targets: (0..p).map(|_| TargetShadow::new(p)).collect(), rounds: vec![0; p] }
    }
}

/// Retain at most this many full violation records (counters keep exact
/// totals past the cap).
const REPORT_CAP: usize = 1024;

/// The checker hub: one per [`crate::Fabric`], shared by all rank threads.
#[derive(Debug)]
pub struct Shadow {
    /// Fast-path gate: one relaxed load when the checker is off.
    active: AtomicBool,
    /// Current [`RacecheckMode`] as a u8.
    mode: AtomicU8,
    /// World size.
    p: usize,
    /// Per-window shadow maps and epoch clocks.
    windows: Mutex<HashMap<u64, WinShadow>>,
    /// Freed window ids → (freeing rank, free time).
    freed: Mutex<HashMap<u64, (u32, f64)>>,
    /// Per-class violation counters.
    flagged: [AtomicU64; RaceClass::COUNT],
    /// Total shadow records inserted.
    tracked: AtomicU64,
    /// Retained violations (capped at [`REPORT_CAP`]).
    reports: Mutex<Vec<RaceViolation>>,
    /// Stderr dedup: identity keys of violations already printed (see
    /// [`RaceViolation::dedup_key`]). Counters and retained reports stay
    /// exact; only the per-line output collapses.
    printed: Mutex<HashSet<DedupKey>>,
    /// Lines suppressed by the dedup (summarised by [`Shadow::report`]).
    suppressed: AtomicU64,
}

/// Identity of a violation for stderr dedup: class, window, overlap
/// range, both origins, and the tripping access's epoch — a hot loop
/// re-flagging the same pair floods one key, a new epoch (or a genuinely
/// different pair) prints again.
type DedupKey = (RaceClass, u64, usize, usize, u32, u32, u64);

impl RaceViolation {
    fn dedup_key(&self) -> DedupKey {
        (self.class, self.win, self.lo, self.hi, self.a.origin, self.b.origin, self.b.epoch)
    }
}

impl Shadow {
    /// Hub for `p` ranks in `mode`.
    pub fn new(p: usize, mode: RacecheckMode) -> Shadow {
        Shadow {
            active: AtomicBool::new(mode != RacecheckMode::Off),
            mode: AtomicU8::new(mode as u8),
            p,
            windows: Mutex::new(HashMap::new()),
            freed: Mutex::new(HashMap::new()),
            flagged: Default::default(),
            tracked: AtomicU64::new(0),
            reports: Mutex::new(Vec::new()),
            printed: Mutex::new(HashSet::new()),
            suppressed: AtomicU64::new(0),
        }
    }

    /// Hub configured from `FOMPI_RACECHECK` (panics on a malformed value).
    pub fn from_env(p: usize) -> Shadow {
        Shadow::new(p, RacecheckMode::from_env())
    }

    /// Is the checker recording? One relaxed load — the entire disabled
    /// hot path.
    #[inline]
    pub fn active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Current mode.
    pub fn mode(&self) -> RacecheckMode {
        RacecheckMode::from_u8(self.mode.load(Ordering::Relaxed))
    }

    /// Switch mode (launch-time plumbing; overrides the env gate).
    pub fn set_mode(&self, mode: RacecheckMode) {
        self.mode.store(mode as u8, Ordering::Relaxed);
        self.active.store(mode != RacecheckMode::Off, Ordering::Relaxed);
    }

    // --------------------------------------------------------- recording

    /// Record a remote access by `origin` to bytes `[lo, hi)` of
    /// `target`'s memory in window `win`; returns any violations the
    /// record exposed (already counted, retained, and — in report mode —
    /// printed). `t_start..t_end` is the op's virtual issue span; `flow`
    /// is the origin's causal flow id at issue time
    /// ([`crate::telemetry::NO_FLOW`] when none).
    #[allow(clippy::too_many_arguments)]
    pub fn record_remote(
        &self,
        win: u64,
        target: u32,
        origin: u32,
        lo: usize,
        hi: usize,
        kind: AccessKind,
        lock: LockCtx,
        t_start: f64,
        t_end: f64,
        flow: u64,
    ) -> Vec<RaceViolation> {
        self.record(
            win,
            target,
            AccessRecord { origin, lo, hi, kind, epoch: 0, phase: 0, lock, t_start, t_end, flow },
        )
    }

    /// Record a local load/store by `rank` on its own window memory.
    #[allow(clippy::too_many_arguments)]
    pub fn record_local(
        &self,
        win: u64,
        rank: u32,
        lo: usize,
        hi: usize,
        write: bool,
        t: f64,
        flow: u64,
    ) -> Vec<RaceViolation> {
        let kind = if write { AccessKind::LocalWrite } else { AccessKind::LocalRead };
        self.record(
            win,
            rank,
            AccessRecord {
                origin: rank,
                lo,
                hi,
                kind,
                epoch: 0,
                phase: 0,
                lock: LockCtx::NoLock,
                t_start: t,
                t_end: t,
                flow,
            },
        )
    }

    fn record(&self, win: u64, target: u32, mut rec: AccessRecord) -> Vec<RaceViolation> {
        if rec.lo >= rec.hi {
            return Vec::new();
        }
        if let Some(&(rank, t_free)) = self.freed.lock().get(&win) {
            let v = RaceViolation {
                class: RaceClass::UseAfterFree,
                win,
                lo: rec.lo,
                hi: rec.hi,
                a: AccessRecord {
                    origin: rank,
                    lo: 0,
                    hi: 0,
                    kind: AccessKind::LocalWrite,
                    epoch: u64::MAX,
                    phase: 0,
                    lock: LockCtx::NoLock,
                    t_start: t_free,
                    t_end: t_free,
                    flow: crate::telemetry::NO_FLOW,
                },
                b: rec,
            };
            self.flag(&v);
            return vec![v];
        }
        let mut out = Vec::new();
        let mut map = self.windows.lock();
        let ws = map.entry(win).or_insert_with(|| WinShadow::new(self.p));
        let ts = &mut ws.targets[target as usize];
        let floor = ts.floor();
        ts.records.retain(|r| r.epoch >= floor);
        // Passive-target sessions pin the epoch sampled at lock time so
        // two real-time-overlapping shared sessions share a generation
        // (even across an intervening unlock by one of them).
        rec.epoch = ts.session[rec.origin as usize].unwrap_or(ts.gen);
        rec.phase = ts.phases[rec.origin as usize];
        for old in &ts.records {
            if old.hi > rec.lo && rec.hi > old.lo && old.epoch == rec.epoch {
                if let Some(class) = classify(old, &rec) {
                    out.push(RaceViolation {
                        class,
                        win,
                        lo: old.lo.max(rec.lo),
                        hi: old.hi.min(rec.hi),
                        a: old.clone(),
                        b: rec.clone(),
                    });
                }
            }
        }
        ts.records.push(rec);
        drop(map);
        self.tracked.fetch_add(1, Ordering::Relaxed);
        for v in &out {
            self.flag(v);
        }
        out
    }

    // ------------------------------------------------------- epoch edges

    /// Collective fence by `origin` on `win`: advance every target's
    /// generation to `round << 32` (a max, so conflicts inside one round
    /// stay visible) and bump the origin's phases.
    pub fn fence(&self, win: u64, origin: u32) {
        let mut map = self.windows.lock();
        let ws = map.entry(win).or_insert_with(|| WinShadow::new(self.p));
        ws.rounds[origin as usize] += 1;
        let floor = ws.rounds[origin as usize] << 32;
        for ts in &mut ws.targets {
            ts.gen = ts.gen.max(floor);
            ts.phases[origin as usize] += 1;
        }
    }

    /// A process-wide synchronisation point (a runtime collective:
    /// barrier, allgather, allreduce, bcast). Every rank is inside the
    /// same rendezvous, so in this thread-simulated world all prior
    /// accesses happen-before all later ones — the canonical
    /// `init → barrier → epoch` idiom must not flag. Advances every
    /// tracked target's generation once; the caller guarantees exactly
    /// one call per collective (multiple bumps would split post-sync
    /// records into distinct epochs and hide real conflicts). Open
    /// passive sessions keep their pinned epochs, so a lock held across
    /// a collective still conflicts with its concurrent holders.
    pub fn process_sync(&self) {
        if !self.active() {
            return;
        }
        let mut map = self.windows.lock();
        for ws in map.values_mut() {
            for ts in &mut ws.targets {
                ts.bump();
            }
        }
    }

    /// Same-origin completion edge (flush/flush_local/complete): bump
    /// `origin`'s phase toward `target`, or toward everyone for the
    /// `_all` flavours.
    pub fn flush(&self, win: u64, origin: u32, target: Option<u32>) {
        let mut map = self.windows.lock();
        let ws = map.entry(win).or_insert_with(|| WinShadow::new(self.p));
        match target {
            Some(t) => ws.targets[t as usize].phases[origin as usize] += 1,
            None => {
                for ts in &mut ws.targets {
                    ts.phases[origin as usize] += 1;
                }
            }
        }
    }

    /// Passive-target lock acquired by `origin` on `target` (or on all
    /// targets for `lock_all`/MCS): sample the session generation. Call
    /// *after* the lock protocol succeeds, so a blocked acquirer samples
    /// the releasing holder's bump.
    pub fn lock_acquired(&self, win: u64, origin: u32, target: Option<u32>) {
        let mut map = self.windows.lock();
        let ws = map.entry(win).or_insert_with(|| WinShadow::new(self.p));
        match target {
            Some(t) => {
                let ts = &mut ws.targets[t as usize];
                ts.session[origin as usize] = Some(ts.gen);
            }
            None => {
                for ts in &mut ws.targets {
                    ts.session[origin as usize] = Some(ts.gen);
                }
            }
        }
    }

    /// Lock released by `origin` on `target` (or all): bump the target
    /// generation(s) — ordering the session against the *next* acquirer —
    /// and clear the session. Call *before* the release becomes visible
    /// to waiters.
    pub fn unlock(&self, win: u64, origin: u32, target: Option<u32>) {
        let mut map = self.windows.lock();
        let ws = map.entry(win).or_insert_with(|| WinShadow::new(self.p));
        match target {
            Some(t) => {
                let ts = &mut ws.targets[t as usize];
                ts.bump();
                ts.phases[origin as usize] += 1;
                ts.session[origin as usize] = None;
            }
            None => {
                for ts in &mut ws.targets {
                    ts.bump();
                    ts.phases[origin as usize] += 1;
                    ts.session[origin as usize] = None;
                }
            }
        }
    }

    /// An acquire edge on `rank`'s own window memory: PSCW post/wait,
    /// `win_sync`, or consuming a notification. Accesses recorded after
    /// this are ordered against everything the edge synchronised with.
    pub fn acquire_own(&self, win: u64, rank: u32) {
        let mut map = self.windows.lock();
        let ws = map.entry(win).or_insert_with(|| WinShadow::new(self.p));
        let ts = &mut ws.targets[rank as usize];
        ts.bump();
        // Inside an open session (e.g. a notified consumer under
        // lock_all), later own-rank accesses are ordered by this edge:
        // re-pin the session so they record in the advanced epoch.
        if ts.session[rank as usize].is_some() {
            ts.session[rank as usize] = Some(ts.gen);
        }
    }

    /// `Win::free` by `rank` at virtual time `t`. `clean` is false when
    /// an access/exposure epoch or lock was still open — itself a
    /// violation.
    pub fn window_freed(&self, win: u64, rank: u32, t: f64, clean: bool) -> Vec<RaceViolation> {
        self.windows.lock().remove(&win);
        self.freed.lock().insert(win, (rank, t));
        if clean {
            return Vec::new();
        }
        let rec = AccessRecord {
            origin: rank,
            lo: 0,
            hi: 0,
            kind: AccessKind::LocalWrite,
            epoch: u64::MAX,
            phase: 0,
            lock: LockCtx::NoLock,
            t_start: t,
            t_end: t,
            flow: crate::telemetry::NO_FLOW,
        };
        let v = RaceViolation {
            class: RaceClass::UseAfterFree,
            win,
            lo: 0,
            hi: 0,
            a: rec.clone(),
            b: rec,
        };
        self.flag(&v);
        vec![v]
    }

    // ------------------------------------------------------- aggregation

    fn flag(&self, v: &RaceViolation) {
        self.flagged[v.class.index()].fetch_add(1, Ordering::Relaxed);
        let mut reports = self.reports.lock();
        if reports.len() < REPORT_CAP {
            reports.push(v.clone());
        }
        drop(reports);
        if self.mode() != RacecheckMode::Off {
            // A hot loop re-exposing one conflict would otherwise emit a
            // line per access pair: print each identity once per epoch
            // and summarise the rest (counters above stay exact).
            if self.printed.lock().insert(v.dedup_key()) {
                eprintln!("{v}");
            } else {
                self.suppressed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Panic in `panic` mode if `viols` is non-empty. Callers emit
    /// telemetry first, then enforce, so the `RaceReport` event is
    /// recorded even on the aborting path.
    pub fn enforce(&self, viols: &[RaceViolation]) {
        if let Some(v) = viols.first() {
            if self.mode() == RacecheckMode::Panic {
                panic!("FOMPI_RACECHECK=panic: {v}");
            }
        }
    }

    /// Violations flagged for `class`.
    pub fn flagged(&self, class: RaceClass) -> u64 {
        self.flagged[class.index()].load(Ordering::Relaxed)
    }

    /// Total violations across all classes.
    pub fn total_flagged(&self) -> u64 {
        RaceClass::ALL.iter().map(|&c| self.flagged(c)).sum()
    }

    /// Total shadow records inserted.
    pub fn tracked(&self) -> u64 {
        self.tracked.load(Ordering::Relaxed)
    }

    /// Retained violation records (first [`REPORT_CAP`]).
    pub fn violations(&self) -> Vec<RaceViolation> {
        self.reports.lock().clone()
    }

    /// Stderr lines suppressed by the per-epoch dedup (repeats of an
    /// already-printed (class, window, range, ranks, epoch) identity).
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }

    /// Window ids marked freed.
    pub fn freed_windows(&self) -> HashSet<u64> {
        self.freed.lock().keys().copied().collect()
    }

    /// Render the `racecheck` summary counter block (mirrors the
    /// telemetry/fault report style). Empty string when off.
    pub fn report(&self) -> String {
        if self.mode() == RacecheckMode::Off {
            return String::new();
        }
        let mut s = String::new();
        s.push_str("== racecheck ==\n");
        s.push_str(&format!(
            "  mode {:<28} tracked accesses {}\n",
            match self.mode() {
                RacecheckMode::Off => "off",
                RacecheckMode::Report => "report",
                RacecheckMode::Panic => "panic",
            },
            self.tracked()
        ));
        for class in RaceClass::ALL {
            s.push_str(&format!("  {:<32} {}\n", class.name(), self.flagged(class)));
        }
        s.push_str(&format!("  {:<32} {}\n", "total", self.total_flagged()));
        s.push_str(&format!("  {:<32} {}\n", "suppressed duplicate reports", self.suppressed()));
        s
    }
}

/// Kind-level commutation: can two overlapping accesses of these kinds
/// be reordered without changing any stored byte? Two reads commute;
/// same-op (non-`MPI_NO_OP`) accumulates commute by the reduction-op
/// algebra of MPI-3.0 §11.7.1 — the same carve-out [`classify`] grants
/// them; every other combination involves an order-sensitive write.
/// This is the shared kernel of the race checker's legality rules and
/// the model checker's DPOR conflict relation ([`crate::mc`]); the
/// latter additionally treats *fetching* AMOs as never commuting, a bit
/// shadow records do not carry.
pub fn kinds_commute(a: AccessKind, b: AccessKind) -> bool {
    if !a.writes() && !b.writes() {
        return true;
    }
    matches!((a, b), (AccessKind::Acc(x), AccessKind::Acc(y)) if x == y && x != ACC_NOOP)
}

/// Decide whether two overlapping same-generation records conflict, and
/// under which class. `None` means a happens-before or spec-permitted
/// overlap.
fn classify(a: &AccessRecord, b: &AccessRecord) -> Option<RaceClass> {
    if !a.kind.writes() && !b.kind.writes() {
        return None;
    }
    if a.origin == b.origin {
        if a.phase != b.phase {
            return None; // ordered by flush/complete
        }
        if a.kind.is_local() && b.kind.is_local() {
            return None; // program order
        }
        if a.kind.is_local() && !b.kind.is_local() {
            // One origin's records arrive in program order (`a` is the
            // older). A synchronous local access followed by issuing a
            // remote op is ordered; only the reverse — a local access
            // while an own remote op is still in flight (same phase,
            // no completion edge) — races.
            return None;
        }
        if a.kind.is_acc() && b.kind.is_acc() {
            return None; // same-origin accumulates are MPI-ordered
        }
    }
    if let (AccessKind::Acc(x), AccessKind::Acc(y)) = (a.kind, b.kind) {
        if x == y || x == ACC_NOOP || y == ACC_NOOP {
            return None; // same-op (or MPI_NO_OP) overlap is permitted
        }
        return Some(RaceClass::AccOps);
    }
    if a.kind.is_local() || b.kind.is_local() {
        return Some(RaceClass::LocalRace);
    }
    if a.kind.is_acc() || b.kind.is_acc() {
        return Some(RaceClass::AccMixed);
    }
    if a.origin != b.origin && a.lock == LockCtx::Shared && b.lock == LockCtx::Shared {
        return Some(RaceClass::LockMode);
    }
    if a.kind.writes() && b.kind.writes() {
        Some(RaceClass::PutPut)
    } else {
        Some(RaceClass::PutGet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub(p: usize) -> Shadow {
        Shadow::new(p, RacecheckMode::Report)
    }

    fn put(sh: &Shadow, win: u64, target: u32, origin: u32, lo: usize, hi: usize) -> usize {
        sh.record_remote(win, target, origin, lo, hi, AccessKind::Put, LockCtx::NoLock, 0.0, 1.0, 0)
            .len()
    }

    #[test]
    fn class_indices_are_dense() {
        for (i, c) in RaceClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(RaceClass::ALL.len(), RaceClass::COUNT);
    }

    #[test]
    fn mode_gates_active_flag() {
        let sh = Shadow::new(2, RacecheckMode::Off);
        assert!(!sh.active());
        sh.set_mode(RacecheckMode::Report);
        assert!(sh.active());
        sh.set_mode(RacecheckMode::Off);
        assert!(!sh.active());
    }

    #[test]
    fn overlapping_puts_same_epoch_conflict() {
        let sh = hub(4);
        assert_eq!(put(&sh, 1, 2, 0, 0, 8), 0);
        assert_eq!(put(&sh, 1, 2, 1, 4, 12), 1);
        assert_eq!(sh.flagged(RaceClass::PutPut), 1);
        let v = &sh.violations()[0];
        assert_eq!(v.win, 1);
        assert_eq!((v.lo, v.hi), (4, 8));
        assert_eq!((v.a.origin, v.b.origin), (0, 1));
    }

    #[test]
    fn disjoint_intervals_do_not_conflict() {
        let sh = hub(4);
        assert_eq!(put(&sh, 1, 2, 0, 0, 8), 0);
        assert_eq!(put(&sh, 1, 2, 1, 8, 16), 0);
        assert_eq!(sh.total_flagged(), 0);
    }

    #[test]
    fn fence_round_orders_across_epochs_not_within() {
        let sh = hub(2);
        assert_eq!(put(&sh, 1, 1, 0, 0, 8), 0);
        // Both ranks fence: new round, generation floor rises.
        sh.fence(1, 0);
        sh.fence(1, 1);
        assert_eq!(put(&sh, 1, 1, 0, 0, 8), 0); // ordered by the fence
        assert_eq!(put(&sh, 1, 1, 1, 0, 8), 1); // same round — conflicts
        assert_eq!(sh.flagged(RaceClass::PutPut), 1);
    }

    #[test]
    fn same_origin_flush_orders_put_then_get() {
        let sh = hub(2);
        let r = sh.record_remote(1, 1, 0, 0, 8, AccessKind::Put, LockCtx::NoLock, 0.0, 1.0, 0);
        assert!(r.is_empty());
        sh.flush(1, 0, Some(1));
        let r = sh.record_remote(1, 1, 0, 0, 8, AccessKind::Get, LockCtx::NoLock, 2.0, 3.0, 0);
        assert!(r.is_empty());
        // Without the flush the same pair conflicts.
        let r = sh.record_remote(1, 1, 0, 0, 8, AccessKind::Put, LockCtx::NoLock, 4.0, 5.0, 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].class, RaceClass::PutGet);
    }

    #[test]
    fn same_op_accumulates_permitted_mixed_ops_flagged() {
        let sh = hub(3);
        let sum = AccessKind::Acc(0);
        let min = AccessKind::Acc(1);
        let noop = AccessKind::Acc(ACC_NOOP);
        assert!(sh.record_remote(1, 2, 0, 0, 8, sum, LockCtx::Shared, 0.0, 1.0, 0).is_empty());
        assert!(sh.record_remote(1, 2, 1, 0, 8, sum, LockCtx::Shared, 0.0, 1.0, 0).is_empty());
        assert!(sh.record_remote(1, 2, 0, 0, 8, noop, LockCtx::Shared, 1.0, 2.0, 0).is_empty());
        // min(1) conflicts with sum(0); rank 1's own sum is MPI-ordered
        // (same origin) and the no_op read is carved out.
        let r = sh.record_remote(1, 2, 1, 0, 8, min, LockCtx::Shared, 2.0, 3.0, 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].class, RaceClass::AccOps);
        assert_eq!(sh.flagged(RaceClass::AccOps), 1);
    }

    #[test]
    fn acc_vs_put_is_non_atomic_overlap() {
        let sh = hub(2);
        assert!(sh
            .record_remote(1, 1, 0, 0, 8, AccessKind::Acc(0), LockCtx::NoLock, 0.0, 1.0, 0)
            .is_empty());
        let r = sh.record_remote(1, 1, 1, 0, 8, AccessKind::Put, LockCtx::NoLock, 0.5, 1.5, 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].class, RaceClass::AccMixed);
    }

    #[test]
    fn local_store_vs_remote_put_conflicts() {
        let sh = hub(2);
        assert_eq!(put(&sh, 1, 1, 0, 0, 8), 0);
        let r = sh.record_local(1, 1, 4, 8, true, 2.0, 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].class, RaceClass::LocalRace);
        // Local read vs remote put also conflicts (separate model).
        let sh = hub(2);
        assert_eq!(put(&sh, 1, 1, 0, 0, 8), 0);
        let r = sh.record_local(1, 1, 0, 4, false, 2.0, 0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn acquire_own_orders_local_reads() {
        let sh = hub(2);
        assert_eq!(put(&sh, 1, 1, 0, 0, 8), 0);
        sh.acquire_own(1, 1);
        assert!(sh.record_local(1, 1, 0, 8, false, 2.0, 0).is_empty());
    }

    #[test]
    fn shared_lock_sessions_overlap_as_lock_mode() {
        let sh = hub(3);
        sh.lock_acquired(1, 0, Some(2));
        sh.lock_acquired(1, 1, Some(2));
        let r = sh.record_remote(1, 2, 0, 0, 8, AccessKind::Put, LockCtx::Shared, 0.0, 1.0, 0);
        assert!(r.is_empty());
        let r = sh.record_remote(1, 2, 1, 0, 8, AccessKind::Put, LockCtx::Shared, 0.5, 1.5, 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].class, RaceClass::LockMode);
    }

    #[test]
    fn unlock_orders_successive_exclusive_sessions() {
        let sh = hub(3);
        sh.lock_acquired(1, 0, Some(2));
        assert!(sh
            .record_remote(1, 2, 0, 0, 8, AccessKind::Put, LockCtx::Exclusive, 0.0, 1.0, 0)
            .is_empty());
        sh.unlock(1, 0, Some(2));
        sh.lock_acquired(1, 1, Some(2));
        assert!(sh
            .record_remote(1, 2, 1, 0, 8, AccessKind::Put, LockCtx::Exclusive, 2.0, 3.0, 0)
            .is_empty());
        assert_eq!(sh.total_flagged(), 0);
    }

    #[test]
    fn access_after_free_is_flagged() {
        let sh = hub(2);
        assert!(sh.window_freed(7, 0, 10.0, true).is_empty());
        let r = sh.record_remote(7, 1, 0, 0, 8, AccessKind::Put, LockCtx::NoLock, 11.0, 12.0, 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].class, RaceClass::UseAfterFree);
        assert!(sh.freed_windows().contains(&7));
    }

    #[test]
    fn unclean_free_is_flagged() {
        let sh = hub(2);
        let r = sh.window_freed(9, 1, 5.0, false);
        assert_eq!(r.len(), 1);
        assert_eq!(sh.flagged(RaceClass::UseAfterFree), 1);
    }

    #[test]
    fn records_purge_on_generation_advance() {
        let sh = hub(2);
        for _ in 0..100 {
            assert_eq!(put(&sh, 1, 1, 0, 0, 8), 0);
            sh.acquire_own(1, 1);
        }
        assert_eq!(sh.total_flagged(), 0);
        assert_eq!(sh.tracked(), 100);
    }

    #[test]
    fn report_block_lists_all_classes() {
        let sh = hub(2);
        put(&sh, 1, 1, 0, 0, 8);
        put(&sh, 1, 1, 1, 0, 8);
        let rep = sh.report();
        assert!(rep.contains("== racecheck =="));
        for class in RaceClass::ALL {
            assert!(rep.contains(class.name()), "missing {}", class.name());
        }
    }

    #[test]
    #[should_panic(expected = "FOMPI_RACECHECK=panic")]
    fn enforce_panics_in_panic_mode() {
        let sh = Shadow::new(2, RacecheckMode::Panic);
        put(&sh, 1, 1, 0, 0, 8);
        let v = sh.record_remote(1, 1, 1, 0, 8, AccessKind::Put, LockCtx::NoLock, 0.0, 1.0, 0);
        sh.enforce(&v);
    }

    #[test]
    fn violation_display_names_both_accesses() {
        let sh = hub(2);
        put(&sh, 3, 1, 0, 0, 8);
        sh.record_remote(3, 1, 1, 4, 12, AccessKind::Put, LockCtx::NoLock, 1.0, 2.0, 0);
        let v = &sh.violations()[0];
        let msg = v.to_string();
        assert!(msg.contains("racecheck[put_put]"));
        assert!(msg.contains("win 3"));
        assert!(msg.contains("bytes [4, 8)"));
        assert!(msg.contains("rank 0"));
        assert!(msg.contains("rank 1"));
        assert!(msg.contains("epoch"));
    }

    #[test]
    fn violation_display_carries_both_flow_ids() {
        let sh = hub(2);
        sh.record_remote(3, 1, 0, 0, 8, AccessKind::Put, LockCtx::NoLock, 0.0, 1.0, 41);
        sh.record_remote(3, 1, 1, 0, 8, AccessKind::Put, LockCtx::NoLock, 1.0, 2.0, 42);
        let v = &sh.violations()[0];
        assert_eq!((v.a.flow, v.b.flow), (41, 42));
        let msg = v.to_string();
        assert!(msg.contains("flow 41"), "{msg}");
        assert!(msg.contains("flow 42"), "{msg}");
    }

    #[test]
    fn repeated_identical_violations_are_suppressed_once_printed() {
        let sh = hub(2);
        // Same (class, win, range, ranks, epoch) identity three times:
        // one printed line, two suppressed; counters stay exact.
        for _ in 0..3 {
            sh.record_remote(5, 1, 1, 0, 8, AccessKind::Put, LockCtx::NoLock, 0.0, 1.0, 0);
        }
        // 1 conflict on the 2nd insert + 2 on the 3rd (against both
        // priors) = 3 flagged, all sharing one dedup identity.
        assert_eq!(sh.flagged(RaceClass::PutPut), 3);
        assert_eq!(sh.suppressed(), 2);
        assert!(sh.report().contains("suppressed duplicate reports     2"), "{}", sh.report());
        // A new epoch re-arms the identity: the next conflict prints.
        sh.acquire_own(5, 1);
        sh.record_remote(5, 1, 0, 0, 8, AccessKind::Put, LockCtx::NoLock, 2.0, 3.0, 0);
        sh.record_remote(5, 1, 1, 0, 8, AccessKind::Put, LockCtx::NoLock, 3.0, 4.0, 0);
        assert_eq!(sh.suppressed(), 2, "fresh-epoch repeat must print, not suppress");
    }

    #[test]
    fn kinds_commute_matches_the_classify_carve_outs() {
        use AccessKind::*;
        assert!(kinds_commute(Get, Get));
        assert!(kinds_commute(Get, LocalRead));
        assert!(kinds_commute(Acc(ACC_NOOP), Get));
        assert!(kinds_commute(Acc(3), Acc(3)));
        assert!(!kinds_commute(Acc(3), Acc(4)));
        assert!(!kinds_commute(Acc(3), Acc(ACC_NOOP)));
        assert!(!kinds_commute(Put, Get));
        assert!(!kinds_commute(Put, Put));
        assert!(!kinds_commute(LocalWrite, Get));
    }
}
