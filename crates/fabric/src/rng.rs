//! Small deterministic PRNGs: SplitMix64 and xorshift64*.
//!
//! Everything in this workspace that needs randomness needs *reproducible*
//! randomness — benchmark layouts, simulated OS noise, randomized tests.
//! A cryptographic or adaptive generator buys nothing here, and an external
//! crate would break `cargo build --offline`. SplitMix64 (Steele et al.,
//! "Fast splittable pseudorandom number generators") is the standard seeding
//! hash; [`Rng`] runs xorshift64* on top of a SplitMix64-initialised state.

/// One SplitMix64 step: hashes `x` to a well-mixed 64-bit value. Useful
/// directly as a stateless hash (key scattering, seed derivation).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Read the workspace root seed from `FOMPI_SEED` (decimal or
/// `0x`-prefixed hex), falling back to `default`. Every randomized
/// component (fault plans, soak, proptests) derives its streams from this
/// one value so a failure log prints a single reproducing seed.
pub fn root_seed_from_env(default: u64) -> u64 {
    match std::env::var("FOMPI_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(h, 16).ok()
            } else {
                s.parse().ok()
            };
            parsed.unwrap_or(default)
        }
        Err(_) => default,
    }
}

/// Deterministic xorshift64* generator seeded through SplitMix64.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the generator. Any seed (including 0) is valid: the state is
    /// passed through SplitMix64 and forced non-zero, as xorshift requires.
    pub fn seed_from_u64(seed: u64) -> Self {
        let s = splitmix64(seed);
        Self { state: if s == 0 { 0x9E37_79B9_7F4A_7C15 } else { s } }
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is < 2^-32 for the bounds used here (all « 2^32).
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Fill `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_works() {
        let mut r = Rng::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 1000 uniform samples is near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the published SplitMix64 algorithm.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Rng::seed_from_u64(3);
        let mut b = [0u8; 11];
        r.fill_bytes(&mut b);
        assert!(b.iter().any(|&x| x != 0));
    }
}
