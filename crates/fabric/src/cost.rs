//! Calibrated virtual-time cost model.
//!
//! All constants default to the performance functions measured in §3 of the
//! paper on Blue Waters (Cray XE6, Gemini 3-D torus, AMD Interlagos
//! 2.3 GHz):
//!
//! * `Pput  = 0.16 ns/B · s + 1 µs`
//! * `Pget  = 0.17 ns/B · s + 1.9 µs`
//! * message injection: 416 ns inter-node, 80 ns intra-node
//! * 8-byte AMO latency ≈ 2.4 µs, CAS = 2.4 µs
//! * the DMAPP put/get *protocol change* at 4 KiB (visible as a bump in
//!   Figures 4a/4b/5a/5b)
//!
//! Layered software overheads (foMPI's 173-instruction fast path, Cray UPC /
//! CAF compiler paths, Cray MPI-1 matching, Cray MPI-2.2 one-sided) are
//! charged *by the respective layer crates*, not here; the fabric charges
//! only what the "hardware" costs.

/// Which physical path an operation takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Inter-node RDMA through the (simulated) Gemini NIC.
    Dmapp,
    /// Intra-node direct load/store through the (simulated) XPMEM mapping.
    Xpmem,
}

/// LogGP-style cost parameters, all in nanoseconds (or ns/byte).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Base (zero-byte) latency of an inter-node put.
    pub dmapp_put_base_ns: f64,
    /// Per-byte cost of an inter-node put (inverse bandwidth).
    pub dmapp_put_byte_ns: f64,
    /// Base latency of an inter-node get.
    pub dmapp_get_base_ns: f64,
    /// Per-byte cost of an inter-node get.
    pub dmapp_get_byte_ns: f64,
    /// Message size (bytes) at which DMAPP switches protocols.
    pub dmapp_proto_change_bytes: usize,
    /// One-off latency penalty added at/above the protocol-change size.
    pub dmapp_proto_penalty_ns: f64,
    /// CPU-side injection overhead of one inter-node operation (416 ns —
    /// §3.1.2 of the paper).
    pub dmapp_inject_ns: f64,
    /// LogGP gap `g`: CPU cost of appending one more operation to an open
    /// inter-node injection burst (issue-side batching — the descriptor is
    /// chained onto the doorbell already rung, so only the per-message gap
    /// is paid, not the full injection overhead).
    pub dmapp_gap_ns: f64,
    /// Latency of one remote 8-byte AMO (fetch-and-add, CAS, ...).
    pub dmapp_amo_ns: f64,
    /// Base latency of an intra-node (XPMEM) transfer.
    pub xpmem_base_ns: f64,
    /// Per-byte cost of an intra-node copy (SSE copy loop).
    pub xpmem_byte_ns: f64,
    /// CPU-side injection overhead of one intra-node operation (80 ns ≈ 190
    /// instructions — §3.1.2).
    pub xpmem_inject_ns: f64,
    /// Intra-node per-message gap for batched issues (store-buffer
    /// write-combining continues an open cacheline run).
    pub xpmem_gap_ns: f64,
    /// Latency of an intra-node CPU atomic on shared memory.
    pub xpmem_amo_ns: f64,
    /// Cost of the local memory fence used by flush/fence (78 instructions
    /// ≈ 34 ns at 2.3 GHz; the paper reports Pflush = 76 ns total).
    pub mfence_ns: f64,
    /// Cost of MPI_Win_sync (Psync = 17 ns).
    pub sync_ns: f64,
    /// Memory registration cost per segment (window creation path).
    pub register_ns: f64,
    /// Compute throughput used when applications charge flops
    /// (ns per flop; Interlagos ≈ 9 GF/s/core sustained → 0.11 ns/flop).
    pub ns_per_flop: f64,
    /// Local memcpy cost per byte (used for eager-protocol receiver copies).
    pub memcpy_byte_ns: f64,
    /// Maximum operations one injection burst may coalesce (bounded
    /// descriptor chains; see [`crate::batch`]).
    pub batch_max_ops: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            dmapp_put_base_ns: 1_000.0,
            dmapp_put_byte_ns: 0.16,
            dmapp_get_base_ns: 1_900.0,
            dmapp_get_byte_ns: 0.17,
            dmapp_proto_change_bytes: 4096,
            dmapp_proto_penalty_ns: 400.0,
            dmapp_inject_ns: 416.0,
            dmapp_gap_ns: 50.0,
            dmapp_amo_ns: 2_400.0,
            xpmem_base_ns: 250.0,
            xpmem_byte_ns: 0.08,
            xpmem_inject_ns: 80.0,
            xpmem_gap_ns: 15.0,
            xpmem_amo_ns: 60.0,
            mfence_ns: 34.0,
            sync_ns: 17.0,
            register_ns: 2_000.0,
            ns_per_flop: 0.11,
            memcpy_byte_ns: 0.10,
            batch_max_ops: 64,
        }
    }
}

impl CostModel {
    /// A model with every cost zero — useful for pure-correctness tests.
    pub fn free() -> Self {
        Self {
            dmapp_put_base_ns: 0.0,
            dmapp_put_byte_ns: 0.0,
            dmapp_get_base_ns: 0.0,
            dmapp_get_byte_ns: 0.0,
            dmapp_proto_change_bytes: usize::MAX,
            dmapp_proto_penalty_ns: 0.0,
            dmapp_inject_ns: 0.0,
            dmapp_gap_ns: 0.0,
            dmapp_amo_ns: 0.0,
            xpmem_base_ns: 0.0,
            xpmem_byte_ns: 0.0,
            xpmem_inject_ns: 0.0,
            xpmem_gap_ns: 0.0,
            xpmem_amo_ns: 0.0,
            mfence_ns: 0.0,
            sync_ns: 0.0,
            register_ns: 0.0,
            ns_per_flop: 0.0,
            memcpy_byte_ns: 0.0,
            batch_max_ops: 64,
        }
    }

    /// End-to-end latency of a put of `size` bytes over `t`.
    pub fn put_latency(&self, t: Transport, size: usize) -> f64 {
        match t {
            Transport::Dmapp => {
                let mut l = self.dmapp_put_base_ns + self.dmapp_put_byte_ns * size as f64;
                if size >= self.dmapp_proto_change_bytes {
                    l += self.dmapp_proto_penalty_ns;
                }
                l
            }
            Transport::Xpmem => self.xpmem_base_ns + self.xpmem_byte_ns * size as f64,
        }
    }

    /// End-to-end latency of a get of `size` bytes over `t`.
    pub fn get_latency(&self, t: Transport, size: usize) -> f64 {
        match t {
            Transport::Dmapp => {
                let mut l = self.dmapp_get_base_ns + self.dmapp_get_byte_ns * size as f64;
                if size >= self.dmapp_proto_change_bytes {
                    l += self.dmapp_proto_penalty_ns;
                }
                l
            }
            Transport::Xpmem => self.xpmem_base_ns + self.xpmem_byte_ns * size as f64,
        }
    }

    /// CPU injection overhead of one operation over `t`.
    pub fn inject(&self, t: Transport) -> f64 {
        match t {
            Transport::Dmapp => self.dmapp_inject_ns,
            Transport::Xpmem => self.xpmem_inject_ns,
        }
    }

    /// LogGP gap `g` of appending to an open injection burst over `t`
    /// (charged instead of [`CostModel::inject`] for every coalesced
    /// operation after a burst's first).
    pub fn gap(&self, t: Transport) -> f64 {
        match t {
            Transport::Dmapp => self.dmapp_gap_ns,
            Transport::Xpmem => self.xpmem_gap_ns,
        }
    }

    /// Latency of one 8-byte AMO over `t`.
    pub fn amo_latency(&self, t: Transport) -> f64 {
        match t {
            Transport::Dmapp => self.dmapp_amo_ns,
            Transport::Xpmem => self.xpmem_amo_ns,
        }
    }

    /// One dissemination-barrier round between the furthest participants.
    pub fn barrier_round(&self, t: Transport) -> f64 {
        self.inject(t) + self.put_latency(t, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_put_model_at_8_bytes() {
        let m = CostModel::default();
        // Pput(8 B) = 0.16 * 8 + 1000 ≈ 1 µs.
        let l = m.put_latency(Transport::Dmapp, 8);
        assert!((l - 1001.28).abs() < 0.01, "got {l}");
    }

    #[test]
    fn protocol_change_is_a_bump_not_a_cliff() {
        let m = CostModel::default();
        let below = m.put_latency(Transport::Dmapp, 4095);
        let at = m.put_latency(Transport::Dmapp, 4096);
        assert!(at > below);
        assert!(at - below < 2.0 * m.dmapp_proto_penalty_ns);
    }

    #[test]
    fn get_slower_than_put_for_small() {
        let m = CostModel::default();
        assert!(m.get_latency(Transport::Dmapp, 8) > m.put_latency(Transport::Dmapp, 8));
    }

    #[test]
    fn xpmem_much_cheaper_than_dmapp() {
        let m = CostModel::default();
        assert!(m.put_latency(Transport::Xpmem, 8) * 2.0 < m.put_latency(Transport::Dmapp, 8));
        assert!(m.inject(Transport::Xpmem) < m.inject(Transport::Dmapp));
    }

    #[test]
    fn gap_is_cheaper_than_injection() {
        // Batching only amortises anything if g < o on both transports.
        let m = CostModel::default();
        assert!(m.gap(Transport::Dmapp) < m.inject(Transport::Dmapp));
        assert!(m.gap(Transport::Xpmem) < m.inject(Transport::Xpmem));
    }

    #[test]
    fn free_model_is_all_zero() {
        let m = CostModel::free();
        assert_eq!(m.put_latency(Transport::Dmapp, 1 << 20), 0.0);
        assert_eq!(m.amo_latency(Transport::Xpmem), 0.0);
    }
}
