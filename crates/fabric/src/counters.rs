//! Global operation counters.
//!
//! Used by tests and benchmarks to assert the *message complexity* claims of
//! the paper (e.g. PSCW issues O(k) messages in post/complete and zero in
//! start/wait; fence is O(p log p) total; locks cost one or two AMOs).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of fabric activity.
#[derive(Debug, Default)]
pub struct Counters {
    /// Number of put operations issued.
    pub puts: AtomicU64,
    /// Number of get operations issued.
    pub gets: AtomicU64,
    /// Number of AMOs issued.
    pub amos: AtomicU64,
    /// Total bytes moved by puts.
    pub bytes_put: AtomicU64,
    /// Total bytes moved by gets.
    pub bytes_get: AtomicU64,
    /// Total bytes moved by AMOs (8 per operation).
    pub bytes_amo: AtomicU64,
    /// Number of gsync (bulk completion) calls.
    pub gsyncs: AtomicU64,
    /// Number of per-target flushes (`flush_target` at the fabric layer —
    /// the substrate of `MPI_Win_flush`).
    pub flushes: AtomicU64,
    /// Number of `MPI_Win_fence` epochs entered (counted by the sync layer).
    pub fences: AtomicU64,
    /// Number of lock acquisitions (`MPI_Win_lock` / `lock_all`).
    pub locks: AtomicU64,
    /// Number of lock releases (`MPI_Win_unlock` / `unlock_all`).
    pub unlocks: AtomicU64,
    /// Operations issued through the batching layer (members of bursts,
    /// including each burst's first op — see [`crate::batch`]).
    pub batched_ops: AtomicU64,
    /// Injection bursts retired (by drain or coalescing stop).
    pub batch_flushes: AtomicU64,
    /// Bursts retired specifically because coalescing stopped (next op
    /// non-adjacent / different kind / would cross the protocol change).
    pub batch_splits: AtomicU64,
    /// Notification records appended by notified puts/AMOs
    /// (see [`crate::notify`]).
    pub notify_posts: AtomicU64,
    /// Notification records popped by a consumer.
    pub notify_consumed: AtomicU64,
    /// Notified appends that found the target ring full at least once
    /// (modelled as injection backpressure).
    pub notify_overflows: AtomicU64,
    /// Un-consumed notification records discarded (window free).
    pub notify_dropped: AtomicU64,
}

/// A point-in-time copy of [`Counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Puts issued.
    pub puts: u64,
    /// Gets issued.
    pub gets: u64,
    /// AMOs issued.
    pub amos: u64,
    /// Bytes moved by puts.
    pub bytes_put: u64,
    /// Bytes moved by gets.
    pub bytes_get: u64,
    /// Bytes moved by AMOs.
    pub bytes_amo: u64,
    /// gsync calls.
    pub gsyncs: u64,
    /// Per-target flushes.
    pub flushes: u64,
    /// Fence epochs.
    pub fences: u64,
    /// Lock acquisitions.
    pub locks: u64,
    /// Lock releases.
    pub unlocks: u64,
    /// Operations issued through the batching layer.
    pub batched_ops: u64,
    /// Injection bursts retired.
    pub batch_flushes: u64,
    /// Bursts retired by a coalescing stop.
    pub batch_splits: u64,
    /// Notification records appended.
    pub notify_posts: u64,
    /// Notification records consumed.
    pub notify_consumed: u64,
    /// Notified appends that hit a full ring.
    pub notify_overflows: u64,
    /// Un-consumed notification records discarded.
    pub notify_dropped: u64,
}

impl Counters {
    /// Take a snapshot.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            amos: self.amos.load(Ordering::Relaxed),
            bytes_put: self.bytes_put.load(Ordering::Relaxed),
            bytes_get: self.bytes_get.load(Ordering::Relaxed),
            bytes_amo: self.bytes_amo.load(Ordering::Relaxed),
            gsyncs: self.gsyncs.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            locks: self.locks.load(Ordering::Relaxed),
            unlocks: self.unlocks.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            batch_flushes: self.batch_flushes.load(Ordering::Relaxed),
            batch_splits: self.batch_splits.load(Ordering::Relaxed),
            notify_posts: self.notify_posts.load(Ordering::Relaxed),
            notify_consumed: self.notify_consumed.load(Ordering::Relaxed),
            notify_overflows: self.notify_overflows.load(Ordering::Relaxed),
            notify_dropped: self.notify_dropped.load(Ordering::Relaxed),
        }
    }
}

impl CounterSnapshot {
    /// Difference `self - earlier`, field-wise. Saturating: unordered
    /// snapshots (taken while other ranks are mid-flight) never underflow.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            puts: self.puts.saturating_sub(earlier.puts),
            gets: self.gets.saturating_sub(earlier.gets),
            amos: self.amos.saturating_sub(earlier.amos),
            bytes_put: self.bytes_put.saturating_sub(earlier.bytes_put),
            bytes_get: self.bytes_get.saturating_sub(earlier.bytes_get),
            bytes_amo: self.bytes_amo.saturating_sub(earlier.bytes_amo),
            gsyncs: self.gsyncs.saturating_sub(earlier.gsyncs),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            fences: self.fences.saturating_sub(earlier.fences),
            locks: self.locks.saturating_sub(earlier.locks),
            unlocks: self.unlocks.saturating_sub(earlier.unlocks),
            batched_ops: self.batched_ops.saturating_sub(earlier.batched_ops),
            batch_flushes: self.batch_flushes.saturating_sub(earlier.batch_flushes),
            batch_splits: self.batch_splits.saturating_sub(earlier.batch_splits),
            notify_posts: self.notify_posts.saturating_sub(earlier.notify_posts),
            notify_consumed: self.notify_consumed.saturating_sub(earlier.notify_consumed),
            notify_overflows: self.notify_overflows.saturating_sub(earlier.notify_overflows),
            notify_dropped: self.notify_dropped.saturating_sub(earlier.notify_dropped),
        }
    }

    /// Total one-sided operations (puts + gets + amos).
    pub fn total_ops(&self) -> u64 {
        self.puts + self.gets + self.amos
    }

    /// Total bytes moved by one-sided operations.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_put + self.bytes_get + self.bytes_amo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let c = Counters::default();
        c.puts.fetch_add(3, Ordering::Relaxed);
        c.bytes_put.fetch_add(24, Ordering::Relaxed);
        let a = c.snapshot();
        c.gets.fetch_add(2, Ordering::Relaxed);
        let b = c.snapshot();
        let d = b.since(&a);
        assert_eq!(d.puts, 0);
        assert_eq!(d.gets, 2);
        assert_eq!(b.total_ops(), 5);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let c = Counters::default();
        c.amos.fetch_add(5, Ordering::Relaxed);
        let later = c.snapshot();
        c.amos.fetch_add(1, Ordering::Relaxed);
        let even_later = c.snapshot();
        // Reversed order: "later - even_later" would underflow with plain
        // subtraction; saturating gives 0.
        let d = later.since(&even_later);
        assert_eq!(d.amos, 0);
    }

    #[test]
    fn sync_layer_counters_roundtrip() {
        let c = Counters::default();
        c.fences.fetch_add(2, Ordering::Relaxed);
        c.locks.fetch_add(4, Ordering::Relaxed);
        c.unlocks.fetch_add(4, Ordering::Relaxed);
        c.flushes.fetch_add(1, Ordering::Relaxed);
        c.bytes_amo.fetch_add(16, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!((s.fences, s.locks, s.unlocks, s.flushes), (2, 4, 4, 1));
        assert_eq!(s.total_bytes(), 16);
    }
}
