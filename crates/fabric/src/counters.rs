//! Global operation counters.
//!
//! Used by tests and benchmarks to assert the *message complexity* claims of
//! the paper (e.g. PSCW issues O(k) messages in post/complete and zero in
//! start/wait; fence is O(p log p) total; locks cost one or two AMOs).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of fabric activity.
#[derive(Debug, Default)]
pub struct Counters {
    /// Number of put operations issued.
    pub puts: AtomicU64,
    /// Number of get operations issued.
    pub gets: AtomicU64,
    /// Number of AMOs issued.
    pub amos: AtomicU64,
    /// Total bytes moved by puts.
    pub bytes_put: AtomicU64,
    /// Total bytes moved by gets.
    pub bytes_get: AtomicU64,
    /// Number of gsync (bulk completion) calls.
    pub gsyncs: AtomicU64,
}

/// A point-in-time copy of [`Counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Puts issued.
    pub puts: u64,
    /// Gets issued.
    pub gets: u64,
    /// AMOs issued.
    pub amos: u64,
    /// Bytes moved by puts.
    pub bytes_put: u64,
    /// Bytes moved by gets.
    pub bytes_get: u64,
    /// gsync calls.
    pub gsyncs: u64,
}

impl Counters {
    /// Take a snapshot.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            amos: self.amos.load(Ordering::Relaxed),
            bytes_put: self.bytes_put.load(Ordering::Relaxed),
            bytes_get: self.bytes_get.load(Ordering::Relaxed),
            gsyncs: self.gsyncs.load(Ordering::Relaxed),
        }
    }
}

impl CounterSnapshot {
    /// Difference `self - earlier`, field-wise.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            puts: self.puts - earlier.puts,
            gets: self.gets - earlier.gets,
            amos: self.amos - earlier.amos,
            bytes_put: self.bytes_put - earlier.bytes_put,
            bytes_get: self.bytes_get - earlier.bytes_get,
            gsyncs: self.gsyncs - earlier.gsyncs,
        }
    }

    /// Total one-sided operations (puts + gets + amos).
    pub fn total_ops(&self) -> u64 {
        self.puts + self.gets + self.amos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let c = Counters::default();
        c.puts.fetch_add(3, Ordering::Relaxed);
        c.bytes_put.fetch_add(24, Ordering::Relaxed);
        let a = c.snapshot();
        c.gets.fetch_add(2, Ordering::Relaxed);
        let b = c.snapshot();
        let d = b.since(&a);
        assert_eq!(d.puts, 0);
        assert_eq!(d.gets, 2);
        assert_eq!(b.total_ops(), 5);
    }
}
