//! Minimal `parking_lot`-style synchronisation wrappers over `std::sync`.
//!
//! The build must succeed without registry access, so the workspace carries
//! no external lock crate. These wrappers keep the ergonomic guard-returning
//! API (`lock()`/`read()`/`write()` with no `Result`, `Condvar::wait(&mut
//! guard)`) that the rest of the workspace was written against. Poisoning is
//! deliberately ignored: a panicked rank thread already aborts the test or
//! benchmark via `Universe::launch`'s join, and protocol state in fabric
//! segments is never guarded by these locks.

use std::ops::{Deref, DerefMut};

/// Mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquire, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A fresh condvar.
    pub fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically release the guard's mutex and block; reacquires before
    /// returning (in-place on the same guard, parking_lot style).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

/// Reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Shared acquire, ignoring poison.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive acquire, ignoring poison.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
