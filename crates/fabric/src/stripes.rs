//! Striped lock-free completion horizons.
//!
//! DMAPP tracks implicit-nonblocking completions in bulk: `gsync` waits for
//! *everything* outstanding, `flush_target` for everything toward one peer.
//! The endpoint used to keep that state as a single scalar plus a
//! `RefCell<HashMap<target, horizon>>` — a hash lookup and a dynamic borrow
//! on every issue, and one shared cell that every peer's completions funnel
//! through. [`StripedHorizon`] replaces both with a small fixed array of
//! atomic maxima: targets hash onto stripes, each stripe holds the latest
//! completion time (virtual ns) of any operation routed to it, and updates
//! are a single `fetch_max` — lock-free, allocation-free, and contention-free
//! across peers that land on different stripes.
//!
//! Horizons are non-negative `f64`s stored as raw bits: for non-negative
//! IEEE-754 doubles the unsigned bit pattern is order-isomorphic to the
//! numeric value, so `AtomicU64::fetch_max` on the bits *is* a numeric max.
//!
//! Per-target reads are conservative: [`StripedHorizon::horizon`] returns
//! the stripe's maximum, which may include a stripe-mate's later completion.
//! A flush can therefore only over-wait, never under-wait — correctness of
//! the epoch protocols (which need "everything toward `target` is done") is
//! preserved, and with [`STRIPE_COUNT`] stripes the collision rate is the
//! usual birthday bound on active peers per epoch.

use crate::clock::{bits_to_stamp, stamp_to_bits};
// Model-checked atomics under `--cfg loom` (loom is not a workspace
// dependency — add it locally as a dev-dependency, do not commit, and run
// `RUSTFLAGS="--cfg loom" cargo test -p fompi-fabric --release loom_`).
#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of stripes. A power of two so routing is a mask; 16 keeps the
/// array within two cache lines while giving typical epoch working sets
/// (a handful of distinct targets) collision-free per-target flushes.
pub const STRIPE_COUNT: usize = 16;

/// Striped monotonic completion horizons, indexed by target rank.
#[derive(Debug)]
pub struct StripedHorizon {
    stripes: [AtomicU64; STRIPE_COUNT],
}

impl Default for StripedHorizon {
    fn default() -> Self {
        Self::new()
    }
}

impl StripedHorizon {
    /// All-zero horizons. (Explicit construction rather than a derived
    /// `Default`: loom's `AtomicU64` has no `Default` impl.)
    pub fn new() -> Self {
        Self { stripes: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Which stripe tracks `target`.
    #[inline]
    pub fn stripe_of(target: u32) -> usize {
        target as usize & (STRIPE_COUNT - 1)
    }

    /// Record that an operation toward `target` completes at virtual time
    /// `t`. Monotonic: earlier times never lower a stripe.
    #[inline]
    pub fn note(&self, target: u32, t: f64) {
        debug_assert!(t >= 0.0, "completion horizons are non-negative");
        self.stripes[Self::stripe_of(target)].fetch_max(stamp_to_bits(t), Ordering::AcqRel);
    }

    /// The completion horizon of operations toward `target` (conservative:
    /// the maximum over `target`'s stripe).
    #[inline]
    pub fn horizon(&self, target: u32) -> f64 {
        bits_to_stamp(self.stripes[Self::stripe_of(target)].load(Ordering::Acquire))
    }

    /// The global horizon — what `gsync` waits for.
    #[inline]
    pub fn global(&self) -> f64 {
        self.stripes
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .max()
            .map(bits_to_stamp)
            .unwrap_or(0.0)
    }

    /// Reset every stripe to zero. Only safe with no concurrent noters
    /// (between benchmark repetitions, after a barrier).
    pub fn reset(&self) {
        for s in &self.stripes {
            s.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_is_monotonic_max() {
        let h = StripedHorizon::new();
        h.note(3, 100.0);
        h.note(3, 50.0);
        assert_eq!(h.horizon(3), 100.0);
        h.note(3, 250.5);
        assert_eq!(h.horizon(3), 250.5);
    }

    #[test]
    fn distinct_stripes_are_independent() {
        let h = StripedHorizon::new();
        h.note(1, 1000.0);
        h.note(2, 9.0);
        assert_eq!(h.horizon(1), 1000.0);
        assert_eq!(h.horizon(2), 9.0);
        assert_eq!(h.global(), 1000.0);
    }

    #[test]
    fn stripe_mates_are_conservative() {
        let h = StripedHorizon::new();
        // 0 and STRIPE_COUNT share a stripe: reads may over-report, never
        // under-report.
        h.note(0, 7.0);
        h.note(STRIPE_COUNT as u32, 99.0);
        assert!(h.horizon(0) >= 7.0);
        assert_eq!(h.horizon(STRIPE_COUNT as u32), 99.0);
    }

    #[test]
    fn bit_max_matches_numeric_max_for_nonnegative() {
        // The fetch_max-on-bits trick requires bit order == numeric order
        // for every non-negative pair.
        let samples = [0.0, 1e-300, 0.5, 1.0, 416.0, 1e9, 1e300];
        for &a in &samples {
            for &b in &samples {
                let bits = stamp_to_bits(a).max(stamp_to_bits(b));
                assert_eq!(bits_to_stamp(bits), a.max(b));
            }
        }
    }

    #[test]
    fn concurrent_fetch_max_storm_converges_to_true_max() {
        // 8 writer threads × 4096 notes each, interleaved with readers:
        // after the storm every stripe must hold exactly the max of the
        // values routed to it, and the global horizon the overall max —
        // fetch_max must never lose an update under contention.
        use std::sync::Arc;
        let h = Arc::new(StripedHorizon::new());
        const WRITERS: u32 = 8;
        const NOTES: u32 = 4096;
        let expect_global = ((WRITERS - 1) * NOTES + (NOTES - 1)) as f64 + 0.5;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..NOTES {
                        // Target cycles over all stripes; values are unique
                        // per (writer, i) so the true max is known.
                        let target = (w * NOTES + i) % (STRIPE_COUNT as u32 * 3);
                        h.note(target, (w * NOTES + i) as f64 + 0.5);
                    }
                });
            }
            // Concurrent readers: horizons must be monotone while noted.
            let h2 = Arc::clone(&h);
            s.spawn(move || {
                let mut last = 0.0f64;
                for _ in 0..2000 {
                    let g = h2.global();
                    assert!(g >= last, "global horizon went backwards: {g} < {last}");
                    last = g;
                }
            });
        });
        assert_eq!(h.global(), expect_global);
        // Recompute each stripe's expected max sequentially and compare.
        let mut expect = [0.0f64; STRIPE_COUNT];
        for w in 0..WRITERS {
            for i in 0..NOTES {
                let target = (w * NOTES + i) % (STRIPE_COUNT as u32 * 3);
                let s = StripedHorizon::stripe_of(target);
                let v = (w * NOTES + i) as f64 + 0.5;
                if v > expect[s] {
                    expect[s] = v;
                }
            }
        }
        for (s, &want) in expect.iter().enumerate() {
            // Probe via a target routed to stripe `s`.
            assert_eq!(h.horizon(s as u32), want, "stripe {s} lost an update");
        }
    }

    #[test]
    fn reset_clears_all() {
        let h = StripedHorizon::new();
        for t in 0..64 {
            h.note(t, t as f64 + 1.0);
        }
        h.reset();
        assert_eq!(h.global(), 0.0);
    }

    /// Regression pin for `note`'s release half pairing with `horizon`'s
    /// Acquire load: a payload written (Relaxed) before `note(i)` must be
    /// visible to any thread that observes horizon >= i. Weakening the
    /// `fetch_max` to Relaxed breaks this.
    #[test]
    fn note_release_pairs_with_horizon_acquire() {
        use std::sync::atomic::AtomicU32;
        use std::sync::Arc;
        let h = Arc::new(StripedHorizon::new());
        let data = Arc::new(AtomicU32::new(0));
        const ROUNDS: u32 = 20_000;
        std::thread::scope(|s| {
            {
                let h = Arc::clone(&h);
                let data = Arc::clone(&data);
                s.spawn(move || {
                    for i in 1..=ROUNDS {
                        data.store(i, Ordering::Relaxed);
                        h.note(5, i as f64);
                    }
                });
            }
            let h = Arc::clone(&h);
            let data = Arc::clone(&data);
            s.spawn(move || loop {
                let t = h.horizon(5) as u32;
                if t > 0 {
                    assert!(
                        data.load(Ordering::Relaxed) >= t,
                        "horizon advanced before its payload was visible"
                    );
                }
                if t >= ROUNDS {
                    break;
                }
                std::thread::yield_now();
            });
        });
    }
}

/// Exhaustive interleaving checks under loom (see the import note at the
/// top of the module for how to run them).
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use loom::thread;
    use std::sync::Arc;

    /// Concurrent `fetch_max` storms from two threads must never lose the
    /// maximum, per stripe and globally, in any interleaving.
    #[test]
    fn loom_concurrent_fetch_max_never_loses_the_max() {
        loom::model(|| {
            let h = Arc::new(StripedHorizon::new());
            let a = {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    h.note(0, 10.0);
                    h.note(1, 5.0);
                })
            };
            let b = {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    h.note(0, 7.0);
                    h.note(1, 20.0);
                })
            };
            a.join().unwrap();
            b.join().unwrap();
            assert_eq!(h.horizon(0), 10.0);
            assert_eq!(h.horizon(1), 20.0);
            assert_eq!(h.global(), 20.0);
        });
    }
}
