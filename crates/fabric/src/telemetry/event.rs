//! Trace event vocabulary.
//!
//! One [`Event`] is recorded per RMA operation (put/get/AMO, §2.1's DMAPP
//! completion flavours) and per synchronisation action (fence, PSCW
//! post/start/complete/wait, lock/unlock, flush/gsync — the §2.3 epoch
//! operations). Events are `Copy` and fixed-size so the recording path never
//! allocates; timestamps are *virtual* nanoseconds from the origin rank's
//! [`crate::clock::Clock`].

use crate::cost::Transport;

/// Sentinel target for events with no single peer (fence, lock_all, gsync).
pub const NO_TARGET: u32 = u32::MAX;

/// Sentinel window id for operations outside any window scope.
pub const NO_WIN: u64 = 0;

/// Sentinel flow id for events outside any causal flow.
pub const NO_FLOW: u64 = 0;

/// Pack a causal flow id from its origin rank and per-rank sequence
/// number. Ranks are offset by one so rank 0's flows are nonzero
/// ([`NO_FLOW`] stays free); 24 bits of rank and 40 bits of sequence
/// comfortably exceed any simulated job.
#[inline]
pub fn flow_id(origin: u32, seq: u64) -> u64 {
    ((origin as u64 + 1) << 40) | (seq & ((1u64 << 40) - 1))
}

/// Origin rank encoded in a flow id (see [`flow_id`]).
#[inline]
pub fn flow_origin(flow: u64) -> u32 {
    ((flow >> 40) as u32).wrapping_sub(1)
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Remote put (data movement).
    Put,
    /// Remote get (data movement).
    Get,
    /// Remote atomic memory operation.
    Amo,
    /// `MPI_Win_fence` (collective epoch boundary).
    Fence,
    /// `MPI_Win_post` (PSCW exposure epoch open).
    Post,
    /// `MPI_Win_start` (PSCW access epoch open).
    Start,
    /// `MPI_Win_complete` (PSCW access epoch close).
    Complete,
    /// `MPI_Win_wait` / successful `MPI_Win_test` (exposure epoch close).
    WaitEpoch,
    /// `MPI_Win_lock` (passive-target epoch open).
    Lock,
    /// `MPI_Win_unlock` (passive-target epoch close).
    Unlock,
    /// `MPI_Win_lock_all`.
    LockAll,
    /// `MPI_Win_unlock_all`.
    UnlockAll,
    /// `MPI_Win_flush` / `flush_all` (remote completion inside an epoch).
    Flush,
    /// `MPI_Win_flush_local` / `flush_local_all`.
    FlushLocal,
    /// DMAPP bulk completion (`gsync`) at the fabric layer.
    Gsync,
    /// `MPI_Win_sync` (memory-barrier only).
    WinSync,
    /// Injected latency jitter/spike ([`crate::faults`]); the span covers
    /// the extra wire latency added to the op it hit.
    FaultJitter,
    /// Injected completion-retirement delay (nonblocking flavours only).
    FaultDelay,
    /// Injected injection-queue backpressure (issue stall or rejected
    /// nonblocking issue).
    FaultBackpressure,
    /// Injected rank pause (simulated OS noise).
    FaultPause,
    /// A bounded retry after a transient fault (e.g. re-attempted
    /// registration after `SegmentBusy`).
    FaultRetry,
    /// An issue-side injection burst retired by an explicit drain
    /// (flush/gsync/ordered release — see [`crate::batch`]). The span
    /// covers the burst's issue window (open → retire).
    BatchFlush,
    /// An injection burst retired because coalescing stopped: the next
    /// operation was non-adjacent, a different kind, or would cross the
    /// protocol-change size or op cap.
    BatchSplit,
    /// A notification record appended on notified put/AMO retirement
    /// (see [`crate::notify`]). The span covers the notified operation's
    /// issue → notification-visible window.
    NotifyPost,
    /// A consumer matched a notification (`wait_notify`/`test_notify`).
    /// The span covers the wait's start → match.
    NotifyWait,
    /// An un-consumed notification record discarded at window free.
    NotifyDrop,
    /// A racecheck violation ([`crate::shadow`]): two conflicting accesses
    /// overlapped inside one epoch. `origin`/`target` are the two access
    /// origins, `bytes` the overlap length, and the span covers the union
    /// of both accesses' virtual-time windows. Full records (kind, byte
    /// interval, epoch, lock context) are retained by
    /// [`crate::shadow::Shadow::violations`].
    RaceReport,
    /// A versioned remote read (`fompi-txn`): version get + payload get +
    /// re-validation. The span covers the whole read including torn-read
    /// retries.
    TxnRead,
    /// A committed optimistic multi-key transaction. The span covers lock
    /// acquisition through version publication; `bytes` is the total
    /// payload written.
    TxnCommit,
    /// An aborted transaction attempt (lock conflict, validation failure
    /// or retry-budget exhaustion). The span covers the failed attempt
    /// including rollback.
    TxnAbort,
    /// A message appended onto a remote-memory channel (`fompi-rmc` fan-in
    /// producer or fan-out publisher). The span covers the notified put
    /// including any credit stall; `bytes` is the payload length.
    RmcSend,
    /// A message drained from a remote-memory channel (fan-in consumer or
    /// fan-out subscriber). The span covers the match → credit-return
    /// window.
    RmcRecv,
    /// One complete RPC round trip at the caller (`fompi-rmc::rpc`):
    /// request send through reply match. `bytes` is request + reply
    /// payload.
    RpcCall,
}

impl EventKind {
    /// Number of distinct kinds (size of per-class stat arrays).
    pub const COUNT: usize = 33;

    /// All kinds, in `index` order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::Put,
        EventKind::Get,
        EventKind::Amo,
        EventKind::Fence,
        EventKind::Post,
        EventKind::Start,
        EventKind::Complete,
        EventKind::WaitEpoch,
        EventKind::Lock,
        EventKind::Unlock,
        EventKind::LockAll,
        EventKind::UnlockAll,
        EventKind::Flush,
        EventKind::FlushLocal,
        EventKind::Gsync,
        EventKind::WinSync,
        EventKind::FaultJitter,
        EventKind::FaultDelay,
        EventKind::FaultBackpressure,
        EventKind::FaultPause,
        EventKind::FaultRetry,
        EventKind::BatchFlush,
        EventKind::BatchSplit,
        EventKind::NotifyPost,
        EventKind::NotifyWait,
        EventKind::NotifyDrop,
        EventKind::RaceReport,
        EventKind::TxnRead,
        EventKind::TxnCommit,
        EventKind::TxnAbort,
        EventKind::RmcSend,
        EventKind::RmcRecv,
        EventKind::RpcCall,
    ];

    /// Dense index for per-class stat arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-case name (used in reports and trace JSON).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Put => "put",
            EventKind::Get => "get",
            EventKind::Amo => "amo",
            EventKind::Fence => "fence",
            EventKind::Post => "post",
            EventKind::Start => "start",
            EventKind::Complete => "complete",
            EventKind::WaitEpoch => "wait",
            EventKind::Lock => "lock",
            EventKind::Unlock => "unlock",
            EventKind::LockAll => "lock_all",
            EventKind::UnlockAll => "unlock_all",
            EventKind::Flush => "flush",
            EventKind::FlushLocal => "flush_local",
            EventKind::Gsync => "gsync",
            EventKind::WinSync => "win_sync",
            EventKind::FaultJitter => "fault_jitter",
            EventKind::FaultDelay => "fault_delay",
            EventKind::FaultBackpressure => "fault_backpressure",
            EventKind::FaultPause => "fault_pause",
            EventKind::FaultRetry => "fault_retry",
            EventKind::BatchFlush => "batch_flush",
            EventKind::BatchSplit => "batch_split",
            EventKind::NotifyPost => "notify_post",
            EventKind::NotifyWait => "notify_wait",
            EventKind::NotifyDrop => "notify_drop",
            EventKind::RaceReport => "race_report",
            EventKind::TxnRead => "txn_read",
            EventKind::TxnCommit => "txn_commit",
            EventKind::TxnAbort => "txn_abort",
            EventKind::RmcSend => "rmc_send",
            EventKind::RmcRecv => "rmc_recv",
            EventKind::RpcCall => "rpc_call",
        }
    }

    /// Is this a data-movement operation (vs a synchronisation action)?
    #[inline]
    pub fn is_rma(self) -> bool {
        matches!(self, EventKind::Put | EventKind::Get | EventKind::Amo)
    }

    /// Is this an injected perturbation ([`crate::faults`])?
    #[inline]
    pub fn is_fault(self) -> bool {
        matches!(
            self,
            EventKind::FaultJitter
                | EventKind::FaultDelay
                | EventKind::FaultBackpressure
                | EventKind::FaultPause
                | EventKind::FaultRetry
        )
    }
}

/// DMAPP completion flavour of an RMA operation (§2.1). Sync events carry
/// [`Flavor::NotApplicable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Flavor {
    /// Returned only when remotely complete.
    Blocking,
    /// Explicit nonblocking (`*_nb`, completed by `wait`).
    Nonblocking,
    /// Implicit nonblocking (completed in bulk by `gsync`/`flush`).
    Implicit,
    /// Synchronisation events have no completion flavour.
    NotApplicable,
}

impl Flavor {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Flavor::Blocking => "blocking",
            Flavor::Nonblocking => "nonblocking",
            Flavor::Implicit => "implicit",
            Flavor::NotApplicable => "-",
        }
    }
}

/// One recorded operation. `t_start`/`t_end` are virtual ns on the origin's
/// clock; for nonblocking flavours `t_end` is the *remote completion* time
/// (the op's latency horizon), not the local return time.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Completion flavour (RMA ops only).
    pub flavor: Flavor,
    /// Physical path, when a single peer is involved.
    pub transport: Option<Transport>,
    /// Issuing rank.
    pub origin: u32,
    /// Peer rank, or [`NO_TARGET`].
    pub target: u32,
    /// Window id ([`crate::Fabric`]-symmetric meta id), or [`NO_WIN`].
    pub win: u64,
    /// Payload bytes (0 for pure sync events; 8 for AMOs).
    pub bytes: u64,
    /// Causal flow id ([`flow_id`]), or [`NO_FLOW`]. Issue-side RMA events
    /// and their target-side consumption events (notify waits, signal
    /// waits) share a flow id, which the Perfetto exporter turns into flow
    /// arrows across rank tracks.
    pub flow: u64,
    /// Virtual start time (ns).
    pub t_start: f64,
    /// Virtual completion time (ns).
    pub t_end: f64,
}

impl Event {
    /// Latency in virtual ns (clamped non-negative).
    #[inline]
    pub fn latency_ns(&self) -> f64 {
        (self.t_end - self.t_start).max(0.0)
    }

    /// Transport name for reports ("dmapp" / "xpmem" / "-").
    pub fn transport_name(&self) -> &'static str {
        match self.transport {
            Some(Transport::Dmapp) => "dmapp",
            Some(Transport::Xpmem) => "xpmem",
            None => "-",
        }
    }
}

impl Default for Event {
    fn default() -> Self {
        Event {
            kind: EventKind::Put,
            flavor: Flavor::NotApplicable,
            transport: None,
            origin: 0,
            target: NO_TARGET,
            win: NO_WIN,
            bytes: 0,
            flow: NO_FLOW,
            t_start: 0.0,
            t_end: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(EventKind::ALL.len(), EventKind::COUNT);
    }

    #[test]
    fn latency_clamps_negative() {
        let ev = Event { t_start: 10.0, t_end: 5.0, ..Event::default() };
        assert_eq!(ev.latency_ns(), 0.0);
        let ev = Event { t_start: 5.0, t_end: 15.0, ..Event::default() };
        assert_eq!(ev.latency_ns(), 10.0);
    }

    #[test]
    fn rma_classification() {
        assert!(EventKind::Put.is_rma());
        assert!(EventKind::Amo.is_rma());
        assert!(!EventKind::Fence.is_rma());
        assert!(!EventKind::Flush.is_rma());
        assert!(!EventKind::FaultJitter.is_rma());
    }

    #[test]
    fn flow_ids_pack_and_unpack() {
        assert_ne!(flow_id(0, 0), NO_FLOW);
        assert_eq!(flow_origin(flow_id(0, 0)), 0);
        assert_eq!(flow_origin(flow_id(17, 999)), 17);
        assert_ne!(flow_id(0, 1), flow_id(1, 1));
        assert_ne!(flow_id(3, 1), flow_id(3, 2));
    }

    #[test]
    fn fault_classification() {
        for k in EventKind::ALL {
            assert_eq!(k.is_fault(), k.name().starts_with("fault_"), "{k:?}");
        }
    }
}
