//! Chrome `trace_event` / Perfetto JSON export.
//!
//! Serialises a drained event stream into the Trace Event Format's JSON
//! array flavour, loadable by `ui.perfetto.dev` and `chrome://tracing`.
//! Each rank becomes a named thread (`tid` = rank) of one process; every
//! recorded operation becomes a complete-duration (`"ph":"X"`) slice whose
//! `args` carry the peer, byte count, window, transport and completion
//! flavour. Timestamps are virtual microseconds (the format's unit), so
//! the timeline shows *virtual* time.
//!
//! The writer is hand-rolled: every emitted string is a fixed identifier or
//! a number, so no JSON escaping is required.

use super::event::{Event, NO_TARGET, NO_WIN};
use super::Telemetry;
use std::io::{self, Write};
use std::path::Path;

/// Serialise `events` (as produced by [`Telemetry::events`]) for `p` ranks
/// into Trace Event Format JSON.
pub fn write_trace<W: Write>(w: &mut W, events: &[Event], p: usize) -> io::Result<()> {
    w.write_all(b"{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    let mut first = true;
    // Metadata: name the process and one thread per rank.
    write_sep(w, &mut first)?;
    w.write_all(
        b"{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
          \"args\":{\"name\":\"fompi virtual time\"}}",
    )?;
    for rank in 0..p {
        write_sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\
             \"args\":{{\"name\":\"rank {rank}\"}}}}"
        )?;
    }
    for ev in events {
        write_sep(w, &mut first)?;
        write_event(w, ev)?;
    }
    w.write_all(b"]}")?;
    Ok(())
}

fn write_sep<W: Write>(w: &mut W, first: &mut bool) -> io::Result<()> {
    if *first {
        *first = false;
        Ok(())
    } else {
        w.write_all(b",")
    }
}

fn write_event<W: Write>(w: &mut W, ev: &Event) -> io::Result<()> {
    // ts/dur are microseconds in the trace format; clocks are virtual ns.
    let ts_us = ev.t_start / 1000.0;
    let dur_us = ev.latency_ns() / 1000.0;
    write!(
        w,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.4},\"dur\":{:.4},\
         \"pid\":0,\"tid\":{},\"args\":{{",
        ev.kind.name(),
        if ev.kind.is_rma() {
            "rma"
        } else if ev.kind.is_fault() {
            "fault"
        } else {
            "sync"
        },
        ts_us,
        dur_us,
        ev.origin,
    )?;
    let mut first = true;
    let mut field = |w: &mut W, key: &str, val: String| -> io::Result<()> {
        if first {
            first = false;
        } else {
            w.write_all(b",")?;
        }
        write!(w, "\"{key}\":{val}")
    };
    if ev.target != NO_TARGET {
        field(w, "target", ev.target.to_string())?;
    }
    if ev.kind.is_rma() {
        field(w, "bytes", ev.bytes.to_string())?;
        field(w, "flavor", format!("\"{}\"", ev.flavor.name()))?;
    }
    if ev.win != NO_WIN {
        field(w, "win", ev.win.to_string())?;
    }
    if ev.transport.is_some() {
        field(w, "transport", format!("\"{}\"", ev.transport_name()))?;
    }
    w.write_all(b"}}")
}

/// Render the trace to a `String`.
pub fn trace_json(events: &[Event], p: usize) -> String {
    let mut buf = Vec::new();
    write_trace(&mut buf, events, p).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("trace JSON is ASCII")
}

/// Drain `tel` and write the trace to `path` (quiescent-point only, like
/// [`Telemetry::events`]). Creates parent directories as needed.
pub fn export_trace(tel: &Telemetry, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let events = tel.events();
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_trace(&mut f, &events, tel.num_ranks())?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Transport;
    use crate::telemetry::event::{EventKind, Flavor};

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                kind: EventKind::Put,
                flavor: Flavor::Implicit,
                transport: Some(Transport::Dmapp),
                origin: 0,
                target: 1,
                win: 7,
                bytes: 4096,
                t_start: 1000.0,
                t_end: 2655.0,
            },
            Event {
                kind: EventKind::Fence,
                flavor: Flavor::NotApplicable,
                transport: None,
                origin: 1,
                target: NO_TARGET,
                win: 7,
                bytes: 0,
                t_start: 3000.0,
                t_end: 5900.0,
            },
        ]
    }

    /// A JSON validator sufficient for our own output: objects, arrays,
    /// strings without escapes, and plain numbers.
    fn check_json(s: &str) {
        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && b[*i].is_ascii_whitespace() {
                *i += 1;
            }
        }
        fn value(b: &[u8], i: &mut usize) {
            skip_ws(b, i);
            match b[*i] {
                b'{' => {
                    *i += 1;
                    skip_ws(b, i);
                    if b[*i] == b'}' {
                        *i += 1;
                        return;
                    }
                    loop {
                        skip_ws(b, i);
                        assert_eq!(b[*i], b'"', "key at {i}");
                        string(b, i);
                        skip_ws(b, i);
                        assert_eq!(b[*i], b':', "colon at {i}");
                        *i += 1;
                        value(b, i);
                        skip_ws(b, i);
                        match b[*i] {
                            b',' => *i += 1,
                            b'}' => {
                                *i += 1;
                                return;
                            }
                            c => panic!("unexpected {:?} at {i}", c as char),
                        }
                    }
                }
                b'[' => {
                    *i += 1;
                    skip_ws(b, i);
                    if b[*i] == b']' {
                        *i += 1;
                        return;
                    }
                    loop {
                        value(b, i);
                        skip_ws(b, i);
                        match b[*i] {
                            b',' => *i += 1,
                            b']' => {
                                *i += 1;
                                return;
                            }
                            c => panic!("unexpected {:?} at {i}", c as char),
                        }
                    }
                }
                b'"' => string(b, i),
                _ => {
                    let start = *i;
                    while *i < b.len() && !b",]}".contains(&b[*i]) && !b[*i].is_ascii_whitespace() {
                        *i += 1;
                    }
                    let tok = std::str::from_utf8(&b[start..*i]).unwrap();
                    assert!(
                        tok.parse::<f64>().is_ok() || tok == "true" || tok == "false",
                        "bad literal {tok:?}"
                    );
                }
            }
        }
        fn string(b: &[u8], i: &mut usize) {
            assert_eq!(b[*i], b'"');
            *i += 1;
            while b[*i] != b'"' {
                assert_ne!(b[*i], b'\\', "no escapes expected");
                *i += 1;
            }
            *i += 1;
        }
        let b = s.as_bytes();
        let mut i = 0;
        value(b, &mut i);
        skip_ws(b, &mut i);
        assert_eq!(i, b.len(), "trailing garbage");
    }

    #[test]
    fn trace_is_valid_json_with_expected_fields() {
        let json = trace_json(&sample_events(), 2);
        check_json(&json);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"put\""));
        assert!(json.contains("\"cat\":\"rma\""));
        assert!(json.contains("\"name\":\"fence\""));
        assert!(json.contains("\"cat\":\"sync\""));
        assert!(json.contains("\"transport\":\"dmapp\""));
        assert!(json.contains("\"flavor\":\"implicit\""));
        assert!(json.contains("\"win\":7"));
        assert!(json.contains("\"name\":\"rank 1\""));
        // put: ts = 1000 ns = 1 µs, dur = 1655 ns = 1.655 µs.
        assert!(json.contains("\"ts\":1.0000"));
        assert!(json.contains("\"dur\":1.6550"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = trace_json(&[], 0);
        check_json(&json);
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn export_writes_file() {
        let dir = std::env::temp_dir().join("fompi-telemetry-test");
        let path = dir.join("trace.json");
        let tel = Telemetry::with_capacity(2, true, 16);
        for ev in sample_events() {
            tel.record(ev);
        }
        export_trace(&tel, &path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        check_json(&body);
        assert!(body.contains("\"name\":\"put\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
