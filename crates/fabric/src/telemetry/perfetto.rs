//! Chrome `trace_event` / Perfetto JSON export.
//!
//! Serialises a drained event stream into the Trace Event Format's JSON
//! array flavour, loadable by `ui.perfetto.dev` and `chrome://tracing`.
//! Each rank becomes a named thread (`tid` = rank) of one process; every
//! recorded operation becomes a complete-duration (`"ph":"X"`) slice whose
//! `args` carry the peer, byte count, window, transport and completion
//! flavour. Timestamps are virtual microseconds (the format's unit), so
//! the timeline shows *virtual* time.
//!
//! On top of the raw slices the exporter synthesises three structural
//! layers, all derived — the recording hot path pays nothing for them:
//!
//! * **flow arrows** (`"ph":"s"/"t"/"f"`): events sharing a nonzero
//!   [`Event::flow`] id are chained origin → target, so a notified put
//!   reads as one connected arc from the issuing rank's slice to the
//!   consuming rank's `notify_wait` slice;
//! * **scope spans** (`cat:"scope"`): lock sessions, lock-all sessions,
//!   PSCW access/exposure epochs and fence rounds become enclosing slices
//!   on the opening rank's track, nesting the member operations;
//! * a **`telemetry_dropped` marker** (instant event) whenever the event
//!   rings overwrote data, so a truncated trace is visibly truncated.
//!
//! All string fields are escaped (`\"`, `\\`, control characters), so
//! arbitrary names survive the hand-rolled writer.

use super::event::{Event, EventKind, NO_FLOW, NO_TARGET, NO_WIN};
use super::Telemetry;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Write};
use std::path::Path;

/// Append `s` to `out` with JSON string escaping (quotes, backslashes and
/// control characters; the surrounding quotes are the caller's).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `s` as a quoted, escaped JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Serialise `events` (as produced by [`Telemetry::events`]) for `p` ranks
/// into Trace Event Format JSON. `dropped` is the ring-overwrite count
/// ([`Telemetry::dropped`]); when nonzero a `telemetry_dropped` instant
/// marker records that the stream is truncated.
pub fn write_trace<W: Write>(
    w: &mut W,
    events: &[Event],
    p: usize,
    dropped: u64,
) -> io::Result<()> {
    w.write_all(b"{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    let mut first = true;
    // Metadata: name the process and one thread per rank.
    write_sep(w, &mut first)?;
    w.write_all(
        b"{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
          \"args\":{\"name\":\"fompi virtual time\"}}",
    )?;
    for rank in 0..p {
        write_sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\
             \"args\":{{\"name\":{}}}}}",
            json_str(&format!("rank {rank}"))
        )?;
    }
    if dropped > 0 {
        write_sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"telemetry_dropped\",\"cat\":\"telemetry\",\"ph\":\"i\",\
             \"ts\":0,\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{{\"dropped\":{dropped}}}}}"
        )?;
    }
    write_scope_spans(w, events, &mut first)?;
    for ev in events {
        write_sep(w, &mut first)?;
        write_event(w, ev)?;
    }
    write_flow_arrows(w, events, &mut first)?;
    w.write_all(b"]}")?;
    Ok(())
}

fn write_sep<W: Write>(w: &mut W, first: &mut bool) -> io::Result<()> {
    if *first {
        *first = false;
        Ok(())
    } else {
        w.write_all(b",")
    }
}

fn write_event<W: Write>(w: &mut W, ev: &Event) -> io::Result<()> {
    // ts/dur are microseconds in the trace format; clocks are virtual ns.
    let ts_us = ev.t_start / 1000.0;
    let dur_us = ev.latency_ns() / 1000.0;
    write!(
        w,
        "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{:.4},\"dur\":{:.4},\
         \"pid\":0,\"tid\":{},\"args\":{{",
        json_str(ev.kind.name()),
        json_str(if ev.kind.is_rma() {
            "rma"
        } else if ev.kind.is_fault() {
            "fault"
        } else {
            "sync"
        }),
        ts_us,
        dur_us,
        ev.origin,
    )?;
    let mut first = true;
    let mut field = |w: &mut W, key: &str, val: String| -> io::Result<()> {
        if first {
            first = false;
        } else {
            w.write_all(b",")?;
        }
        write!(w, "{}:{val}", json_str(key))
    };
    if ev.target != NO_TARGET {
        field(w, "target", ev.target.to_string())?;
    }
    if ev.kind.is_rma() {
        field(w, "bytes", ev.bytes.to_string())?;
        field(w, "flavor", json_str(ev.flavor.name()))?;
    }
    if ev.win != NO_WIN {
        field(w, "win", ev.win.to_string())?;
    }
    if ev.transport.is_some() {
        field(w, "transport", json_str(ev.transport_name()))?;
    }
    if ev.flow != NO_FLOW {
        field(w, "flow", ev.flow.to_string())?;
    }
    w.write_all(b"}}")
}

/// Does this event *produce* into its flow (issue-side), as opposed to
/// consuming a peer's? RMA issues and notification posts produce;
/// `notify_wait`/`notify_drop` consume.
fn is_flow_producer(kind: EventKind) -> bool {
    kind.is_rma() || kind == EventKind::NotifyPost
}

fn is_flow_consumer(kind: EventKind) -> bool {
    matches!(kind, EventKind::NotifyWait | EventKind::NotifyDrop)
}

/// Emit flow arrows (`"ph":"s"/"t"/"f"`) chaining the events that share
/// each nonzero flow id, in causal (virtual-time) order. The terminating
/// `"f"` binds to its enclosing consumer slice (`"bp":"e"`); its timestamp
/// is pulled forward to the producer's issue time when the consumer's wait
/// opened earlier, so arrows always point forward in virtual time.
fn write_flow_arrows<W: Write>(w: &mut W, events: &[Event], first: &mut bool) -> io::Result<()> {
    let mut flows: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for ev in events {
        if ev.flow != NO_FLOW && (is_flow_producer(ev.kind) || is_flow_consumer(ev.kind)) {
            flows.entry(ev.flow).or_default().push(ev);
        }
    }
    for (flow, evs) in flows {
        // Producers (issue order), then consumers (completion order): a
        // wait span typically *opens* before the operation it waits for is
        // even issued, so the chain is role-ordered, not t_start-ordered.
        let mut producers: Vec<&Event> =
            evs.iter().copied().filter(|e| is_flow_producer(e.kind)).collect();
        let mut consumers: Vec<&Event> =
            evs.iter().copied().filter(|e| is_flow_consumer(e.kind)).collect();
        if producers.is_empty() || producers.len() + consumers.len() < 2 {
            // Wait-side-only groups (a wait recorded after the issue fell
            // off the ring) have no origin to anchor an arrow at; lone
            // events have nothing to connect.
            continue;
        }
        producers.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        consumers.sort_by(|a, b| a.t_end.total_cmp(&b.t_end));
        let chain: Vec<&Event> = producers.into_iter().chain(consumers).collect();
        let mut last_ts = 0.0f64;
        let n = chain.len();
        for (i, ev) in chain.iter().enumerate() {
            let (ph, ts) = if i == 0 {
                (r#""s""#, ev.t_start)
            } else if i + 1 == n && is_flow_consumer(ev.kind) {
                // Bind inside the consumer slice, never earlier than the
                // producer step: arrows point forward in virtual time.
                (r#""f","bp":"e""#, last_ts.max(ev.t_start).min(ev.t_end))
            } else {
                (r#""t""#, last_ts.max(ev.t_start).min(ev.t_end.max(ev.t_start)))
            };
            last_ts = ts;
            write_sep(w, first)?;
            write!(
                w,
                "{{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":{ph},\"id\":{flow},\
                 \"ts\":{:.4},\"pid\":0,\"tid\":{}}}",
                ts / 1000.0,
                ev.origin,
            )?;
        }
    }
    Ok(())
}

/// Synthesise enclosing scope spans (`cat:"scope"`) from paired sync
/// events: `lock`→`unlock` (per origin/win/target), `lock_all`→
/// `unlock_all` and PSCW `start`→`complete` / `post`→`wait` (per
/// origin/win), and consecutive `fence`s (per origin/win) as rounds.
fn write_scope_spans<W: Write>(w: &mut W, events: &[Event], first: &mut bool) -> io::Result<()> {
    let emit = |w: &mut W,
                first: &mut bool,
                name: &str,
                origin: u32,
                win: u64,
                t0: f64,
                t1: f64|
     -> io::Result<()> {
        write_sep(w, first)?;
        write!(
            w,
            "{{\"name\":{},\"cat\":\"scope\",\"ph\":\"X\",\"ts\":{:.4},\"dur\":{:.4},\
             \"pid\":0,\"tid\":{origin},\"args\":{{\"win\":{win}}}}}",
            json_str(name),
            t0 / 1000.0,
            (t1 - t0).max(0.0) / 1000.0,
        )
    };
    // Open-scope stashes, keyed by (origin, win[, target]).
    let mut locks: HashMap<(u32, u64, u32), f64> = HashMap::new();
    let mut lock_alls: HashMap<(u32, u64), f64> = HashMap::new();
    let mut access: HashMap<(u32, u64), f64> = HashMap::new();
    let mut exposure: HashMap<(u32, u64), f64> = HashMap::new();
    let mut fences: HashMap<(u32, u64), f64> = HashMap::new();
    for ev in events {
        let key2 = (ev.origin, ev.win);
        match ev.kind {
            EventKind::Lock => {
                locks.insert((ev.origin, ev.win, ev.target), ev.t_start);
            }
            EventKind::Unlock => {
                if let Some(t0) = locks.remove(&(ev.origin, ev.win, ev.target)) {
                    emit(w, first, "lock_session", ev.origin, ev.win, t0, ev.t_end)?;
                }
            }
            EventKind::LockAll => {
                lock_alls.insert(key2, ev.t_start);
            }
            EventKind::UnlockAll => {
                if let Some(t0) = lock_alls.remove(&key2) {
                    emit(w, first, "lock_all_session", ev.origin, ev.win, t0, ev.t_end)?;
                }
            }
            EventKind::Start => {
                access.insert(key2, ev.t_start);
            }
            EventKind::Complete => {
                if let Some(t0) = access.remove(&key2) {
                    emit(w, first, "pscw_access", ev.origin, ev.win, t0, ev.t_end)?;
                }
            }
            EventKind::Post => {
                exposure.insert(key2, ev.t_start);
            }
            EventKind::WaitEpoch => {
                if let Some(t0) = exposure.remove(&key2) {
                    emit(w, first, "pscw_exposure", ev.origin, ev.win, t0, ev.t_end)?;
                }
            }
            EventKind::Fence => {
                if let Some(prev_end) = fences.insert(key2, ev.t_end) {
                    emit(w, first, "fence_round", ev.origin, ev.win, prev_end, ev.t_end)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Render the trace to a `String` (no drop marker — see [`write_trace`]).
pub fn trace_json(events: &[Event], p: usize) -> String {
    let mut buf = Vec::new();
    write_trace(&mut buf, events, p, 0).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("trace JSON is valid UTF-8")
}

/// Drain `tel` and write the trace to `path` (quiescent-point only, like
/// [`Telemetry::events`]). Creates parent directories as needed. Ring
/// overwrites surface as a `telemetry_dropped` marker in the trace.
pub fn export_trace(tel: &Telemetry, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let events = tel.events();
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_trace(&mut f, &events, tel.num_ranks(), tel.dropped())?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Transport;
    use crate::telemetry::event::{flow_id, Flavor};

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                kind: EventKind::Put,
                flavor: Flavor::Implicit,
                transport: Some(Transport::Dmapp),
                origin: 0,
                target: 1,
                win: 7,
                bytes: 4096,
                t_start: 1000.0,
                t_end: 2655.0,
                ..Event::default()
            },
            Event {
                kind: EventKind::Fence,
                flavor: Flavor::NotApplicable,
                transport: None,
                origin: 1,
                target: NO_TARGET,
                win: 7,
                bytes: 0,
                t_start: 3000.0,
                t_end: 5900.0,
                ..Event::default()
            },
        ]
    }

    /// A JSON validator sufficient for our own output: objects, arrays,
    /// strings with standard escapes, and plain numbers.
    fn check_json(s: &str) {
        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && b[*i].is_ascii_whitespace() {
                *i += 1;
            }
        }
        fn value(b: &[u8], i: &mut usize) {
            skip_ws(b, i);
            match b[*i] {
                b'{' => {
                    *i += 1;
                    skip_ws(b, i);
                    if b[*i] == b'}' {
                        *i += 1;
                        return;
                    }
                    loop {
                        skip_ws(b, i);
                        assert_eq!(b[*i], b'"', "key at {i}");
                        string(b, i);
                        skip_ws(b, i);
                        assert_eq!(b[*i], b':', "colon at {i}");
                        *i += 1;
                        value(b, i);
                        skip_ws(b, i);
                        match b[*i] {
                            b',' => *i += 1,
                            b'}' => {
                                *i += 1;
                                return;
                            }
                            c => panic!("unexpected {:?} at {i}", c as char),
                        }
                    }
                }
                b'[' => {
                    *i += 1;
                    skip_ws(b, i);
                    if b[*i] == b']' {
                        *i += 1;
                        return;
                    }
                    loop {
                        value(b, i);
                        skip_ws(b, i);
                        match b[*i] {
                            b',' => *i += 1,
                            b']' => {
                                *i += 1;
                                return;
                            }
                            c => panic!("unexpected {:?} at {i}", c as char),
                        }
                    }
                }
                b'"' => string(b, i),
                _ => {
                    let start = *i;
                    while *i < b.len() && !b",]}".contains(&b[*i]) && !b[*i].is_ascii_whitespace() {
                        *i += 1;
                    }
                    let tok = std::str::from_utf8(&b[start..*i]).unwrap();
                    assert!(
                        tok.parse::<f64>().is_ok() || tok == "true" || tok == "false",
                        "bad literal {tok:?}"
                    );
                }
            }
        }
        fn string(b: &[u8], i: &mut usize) {
            assert_eq!(b[*i], b'"');
            *i += 1;
            while b[*i] != b'"' {
                if b[*i] == b'\\' {
                    *i += 1;
                    match b[*i] {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => *i += 1,
                        b'u' => {
                            for _ in 0..4 {
                                *i += 1;
                                assert!(b[*i].is_ascii_hexdigit(), "bad \\u escape at {i}");
                            }
                            *i += 1;
                        }
                        c => panic!("bad escape {:?} at {i}", c as char),
                    }
                } else {
                    assert!(b[*i] >= 0x20, "raw control byte at {i}");
                    *i += 1;
                }
            }
            *i += 1;
        }
        let b = s.as_bytes();
        let mut i = 0;
        value(b, &mut i);
        skip_ws(b, &mut i);
        assert_eq!(i, b.len(), "trailing garbage");
    }

    #[test]
    fn trace_is_valid_json_with_expected_fields() {
        let json = trace_json(&sample_events(), 2);
        check_json(&json);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"put\""));
        assert!(json.contains("\"cat\":\"rma\""));
        assert!(json.contains("\"name\":\"fence\""));
        assert!(json.contains("\"cat\":\"sync\""));
        assert!(json.contains("\"transport\":\"dmapp\""));
        assert!(json.contains("\"flavor\":\"implicit\""));
        assert!(json.contains("\"win\":7"));
        assert!(json.contains("\"name\":\"rank 1\""));
        // put: ts = 1000 ns = 1 µs, dur = 1655 ns = 1.655 µs.
        assert!(json.contains("\"ts\":1.0000"));
        assert!(json.contains("\"dur\":1.6550"));
        // No drops → no marker.
        assert!(!json.contains("telemetry_dropped"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = trace_json(&[], 0);
        check_json(&json);
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}f");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
        assert_eq!(json_str("plain"), "\"plain\"");
        // The escaped form survives the validator.
        check_json(&format!("{{{}:{}}}", json_str("k\"ey"), json_str("v\u{7}al")));
    }

    #[test]
    fn flow_arrows_link_producer_to_consumer() {
        let flow = flow_id(0, 1);
        let events = vec![
            Event {
                kind: EventKind::Put,
                flavor: Flavor::Implicit,
                origin: 0,
                target: 1,
                bytes: 8,
                flow,
                t_start: 100.0,
                t_end: 700.0,
                ..Event::default()
            },
            Event {
                kind: EventKind::NotifyPost,
                flavor: Flavor::Implicit,
                origin: 0,
                target: 1,
                flow,
                t_start: 100.0,
                t_end: 750.0,
                ..Event::default()
            },
            // Target's wait opened *before* the put was issued.
            Event {
                kind: EventKind::NotifyWait,
                origin: 1,
                target: 0,
                flow,
                t_start: 50.0,
                t_end: 750.0,
                ..Event::default()
            },
        ];
        let json = trace_json(&events, 2);
        check_json(&json);
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"t\""), "{json}");
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\""), "{json}");
        assert!(json.contains(&format!("\"id\":{flow}")));
        // The start arrow anchors at the put's issue (0.1 µs) on tid 0;
        // the finish binds inside the wait slice on tid 1 at ≥ the issue.
        assert!(json.contains("\"ph\":\"s\",\"id\""));
        let f_pos = json.find("\"ph\":\"f\"").unwrap();
        let tail = &json[f_pos..];
        assert!(tail.contains("\"tid\":1"), "{tail}");
    }

    #[test]
    fn lone_flow_events_emit_no_arrows() {
        let events = vec![Event {
            kind: EventKind::Put,
            origin: 0,
            target: 1,
            flow: flow_id(0, 1),
            t_start: 0.0,
            t_end: 10.0,
            ..Event::default()
        }];
        let json = trace_json(&events, 2);
        check_json(&json);
        assert!(!json.contains("\"ph\":\"s\""));
        // The slice still advertises its flow id for filtering.
        assert!(json.contains("\"flow\":"));
    }

    #[test]
    fn scope_spans_wrap_epochs() {
        let mk = |kind, origin, target, t0: f64, t1: f64| Event {
            kind,
            origin,
            target,
            win: 3,
            t_start: t0,
            t_end: t1,
            ..Event::default()
        };
        let events = vec![
            mk(EventKind::Lock, 0, 1, 100.0, 150.0),
            mk(EventKind::Unlock, 0, 1, 900.0, 1000.0),
            mk(EventKind::Start, 1, NO_TARGET, 0.0, 10.0),
            mk(EventKind::Complete, 1, NO_TARGET, 500.0, 600.0),
            mk(EventKind::Post, 2, NO_TARGET, 0.0, 10.0),
            mk(EventKind::WaitEpoch, 2, NO_TARGET, 700.0, 800.0),
            mk(EventKind::Fence, 0, NO_TARGET, 2000.0, 2100.0),
            mk(EventKind::Fence, 0, NO_TARGET, 3000.0, 3100.0),
        ];
        let json = trace_json(&events, 3);
        check_json(&json);
        assert!(json.contains("\"name\":\"lock_session\""), "{json}");
        assert!(json.contains("\"name\":\"pscw_access\""));
        assert!(json.contains("\"name\":\"pscw_exposure\""));
        assert!(json.contains("\"name\":\"fence_round\""), "{json}");
        assert!(json.contains("\"cat\":\"scope\""));
        // lock_session spans 100 ns → 1000 ns = ts 0.1 µs, dur 0.9 µs.
        assert!(json.contains("\"ts\":0.1000,\"dur\":0.9000"), "{json}");
        // One fence pair → exactly one round (2.1 µs → 3.1 µs).
        assert!(json.contains("\"ts\":2.1000,\"dur\":1.0000"), "{json}");
    }

    #[test]
    fn dropped_marker_appears_when_rings_overflowed() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[], 1, 42).unwrap();
        let json = String::from_utf8(buf).unwrap();
        check_json(&json);
        assert!(json.contains("\"name\":\"telemetry_dropped\""));
        assert!(json.contains("\"dropped\":42"));
    }

    #[test]
    fn export_writes_file() {
        let dir = std::env::temp_dir().join("fompi-telemetry-test");
        let path = dir.join("trace.json");
        let tel = Telemetry::with_capacity(2, true, 16);
        for ev in sample_events() {
            tel.record(ev);
        }
        export_trace(&tel, &path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        check_json(&body);
        assert!(body.contains("\"name\":\"put\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_surfaces_drops() {
        let dir = std::env::temp_dir().join("fompi-telemetry-drop-test");
        let path = dir.join("trace.json");
        let tel = Telemetry::with_capacity(1, true, 2);
        for i in 0..6u64 {
            tel.record(Event {
                kind: EventKind::Put,
                origin: 0,
                target: 0,
                bytes: i,
                t_start: i as f64,
                t_end: i as f64 + 1.0,
                ..Event::default()
            });
        }
        export_trace(&tel, &path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        check_json(&body);
        assert!(body.contains("telemetry_dropped"), "{body}");
        assert!(body.contains("\"dropped\":4"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
