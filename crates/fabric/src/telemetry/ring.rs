//! Per-rank single-producer event rings.
//!
//! Each rank (= thread) owns one ring and is its only writer, so the hot
//! path is: one relaxed index load, one plain slot store, one release index
//! store — no CAS, no locks, no allocation. The ring keeps the most recent
//! `capacity` events; older ones are overwritten (the `dropped` count says
//! how many).
//!
//! ## Safety contract
//!
//! * [`EventRing::push`] may only be called from the owning rank's thread
//!   (single producer).
//! * [`EventRing::drain`] may only be called at a *quiescent point*: no
//!   concurrent `push`. The runtime guarantees this by draining only after
//!   all rank threads have been joined (`thread::join` establishes the
//!   happens-before edge that makes the plain slot writes visible).

use super::event::Event;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-capacity overwrite-oldest ring of [`Event`]s.
#[derive(Debug)]
pub struct EventRing {
    slots: Box<[UnsafeCell<Event>]>,
    /// Total events ever pushed (monotonic; slot = widx % capacity).
    widx: AtomicU64,
}

// SAFETY: slots are written only by the single owning producer thread and
// read only at quiescent points (see module docs); the release store on
// `widx` publishes completed writes.
unsafe impl Sync for EventRing {}

impl EventRing {
    /// Ring of `capacity` slots. Capacity 0 disables event retention
    /// entirely (pushes become a no-op; aggregates elsewhere still count).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            slots: (0..capacity).map(|_| UnsafeCell::new(Event::default())).collect(),
            widx: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append an event, overwriting the oldest if full.
    ///
    /// Must only be called from the owning rank's thread.
    #[inline]
    pub fn push(&self, ev: Event) {
        let cap = self.slots.len();
        if cap == 0 {
            return;
        }
        let w = self.widx.load(Ordering::Relaxed);
        // SAFETY: single producer (module contract); readers are quiescent.
        unsafe {
            *self.slots[(w % cap as u64) as usize].get() = ev;
        }
        self.widx.store(w + 1, Ordering::Release);
    }

    /// Total events pushed over the ring's lifetime.
    pub fn written(&self) -> u64 {
        self.widx.load(Ordering::Acquire)
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.written().saturating_sub(self.capacity() as u64)
    }

    /// Copy out the retained events, oldest first.
    ///
    /// Must only be called at a quiescent point (no concurrent `push`).
    pub fn drain(&self) -> Vec<Event> {
        let cap = self.slots.len() as u64;
        let w = self.widx.load(Ordering::Acquire);
        if cap == 0 || w == 0 {
            return Vec::new();
        }
        let kept = w.min(cap);
        let first = w - kept; // global index of the oldest retained event
        (first..w)
            .map(|i| {
                // SAFETY: quiescent point (module contract) — no writer.
                unsafe { *self.slots[(i % cap) as usize].get() }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::event::EventKind;

    fn ev(bytes: u64) -> Event {
        Event { kind: EventKind::Put, bytes, ..Event::default() }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let r = EventRing::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        let out = r.drain();
        assert_eq!(out.len(), 5);
        assert_eq!(out.iter().map(|e| e.bytes).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let r = EventRing::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        let out = r.drain();
        assert_eq!(out.iter().map(|e| e.bytes).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(r.written(), 10);
        assert_eq!(r.dropped(), 6);
    }

    #[test]
    fn zero_capacity_is_a_noop() {
        let r = EventRing::new(0);
        for i in 0..100 {
            r.push(ev(i));
        }
        assert!(r.drain().is_empty());
        assert_eq!(r.written(), 0);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn drain_after_join_sees_all_writes() {
        let r = std::sync::Arc::new(EventRing::new(1024));
        let r2 = r.clone();
        std::thread::spawn(move || {
            for i in 0..100 {
                r2.push(ev(i));
            }
        })
        .join()
        .unwrap();
        assert_eq!(r.drain().len(), 100);
    }
}
