//! Lock-free log2-bucketed histograms.
//!
//! Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
//! `[2^(i-1), 2^i)`. With 65 buckets the full `u64` range is covered, which
//! comfortably spans both message sizes (1 B … GiBs) and virtual latencies
//! (sub-ns … seconds). Recording is one relaxed `fetch_add`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: value 0 plus one per power of two.
pub const BUCKETS: usize = 65;

/// Bucket index for `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_hi(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A concurrent log2 histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Point-in-time copy of all bucket counts.
    pub fn counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Smallest bucket upper bound such that at least `q` (0..=1) of the
    /// samples fall at or below it — a log2-resolution quantile. Returns 0
    /// on an empty histogram.
    ///
    /// `q·total` is clamped to `total`: at large counts the f64 product can
    /// round above the integer total, which would walk past every bucket
    /// and report the `u64::MAX` fallback for mid quantiles — on an
    /// abort-heavy histogram that made p999 jump over p50's bucket.
    pub fn quantile_hi(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let want = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).min(total);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.count(i);
            if seen >= want {
                return bucket_hi(i);
            }
        }
        u64::MAX
    }

    /// Point-in-time mergeable snapshot of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot { counts: self.counts() }
    }

    /// One-line sparkline-style rendering of the non-empty range, for
    /// text reports: `[lo..hi) count` per populated bucket.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for i in 0..BUCKETS {
            let n = self.count(i);
            if n > 0 {
                if !out.is_empty() {
                    out.push_str("  ");
                }
                out.push_str(&format!("[{}..{}]:{}", bucket_lo(i), bucket_hi(i), n));
            }
        }
        if out.is_empty() {
            out.push_str("(empty)");
        }
        out
    }
}

/// A plain-count histogram snapshot: the merge-ready form the metrics
/// plane ships across processes. Merging is bucket-wise addition, which is
/// associative and commutative, so partial snapshots from any number of
/// ranks/jobs combine in any order to the same distribution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    counts: Vec<u64>,
}

impl HistSnapshot {
    /// An empty snapshot (all buckets zero).
    pub fn new() -> Self {
        HistSnapshot { counts: vec![0; BUCKETS] }
    }

    /// Count in bucket `i` (0 beyond the stored range).
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Rebuild a snapshot from `[bucket, count]` pairs — the wire form
    /// [`crate::metrics::MetricsSnapshot::to_json_line`] ships, and what a
    /// cross-process collector (fompi-fleet) reads back before merging.
    /// Out-of-range bucket indices are rejected rather than clamped: a
    /// bad index means a corrupt agent line, not a bigger value.
    pub fn from_pairs(pairs: &[(usize, u64)]) -> Result<Self, String> {
        let mut s = HistSnapshot::new();
        for &(bucket, count) in pairs {
            if bucket >= BUCKETS {
                return Err(format!(
                    "histogram bucket {bucket} out of range (max {})",
                    BUCKETS - 1
                ));
            }
            s.counts[bucket] += count;
        }
        Ok(s)
    }

    /// The populated buckets as `(bucket, count)` pairs, in bucket order —
    /// the inverse of [`HistSnapshot::from_pairs`], used to re-render a
    /// merged distribution in the same wire form it arrived in.
    pub fn pairs(&self) -> Vec<(usize, u64)> {
        self.counts.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| (i, n)).collect()
    }

    /// Fold `other` into `self` (bucket-wise sum).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Same log2-resolution quantile as [`Histogram::quantile_hi`],
    /// including the clamp of `q·total` to `total`.
    pub fn quantile_hi(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let want = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).min(total);
        let mut seen = 0u64;
        for (i, n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= want {
                return bucket_hi(i);
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_one_byte() {
        // 1 B lands in bucket 1 = [1, 1]; 0 stays in bucket 0.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_hi(1), 1);
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
    }

    #[test]
    fn boundaries_protocol_change_4k() {
        // The DMAPP protocol change at 4096 B: 4095 and 4096 must land in
        // different buckets, so the size histogram separates the two
        // protocol regimes.
        let below = bucket_index(4095);
        let at = bucket_index(4096);
        assert_eq!(below, 12, "4095 in [2048, 4095]");
        assert_eq!(at, 13, "4096 in [4096, 8191]");
        assert_eq!(bucket_lo(13), 4096);
        assert_eq!(bucket_hi(12), 4095);
    }

    #[test]
    fn boundaries_max_bucket() {
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
        assert_eq!(bucket_hi(64), u64::MAX);
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(64), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn every_boundary_is_exact() {
        for i in 1..64usize {
            let lo = bucket_lo(i);
            assert_eq!(bucket_index(lo), i, "lo of {i}");
            assert_eq!(bucket_index(lo - 1), i - 1, "below lo of {i}");
            assert_eq!(bucket_index(bucket_hi(i)), i, "hi of {i}");
        }
    }

    #[test]
    fn quantile_walks_buckets() {
        let h = Histogram::new();
        for v in [1u64, 2, 2, 4, 4, 4, 4, 4] {
            h.record(v);
        }
        assert_eq!(h.quantile_hi(0.1), 1);
        // 8 samples: cum counts are 1 (≤1), 3 (≤3), 8 (≤7). The median
        // (4th sample) lands in the [4, 7] bucket → hi = 7.
        assert_eq!(h.quantile_hi(0.5), 7);
        assert_eq!(h.quantile_hi(0.3), 3);
        assert_eq!(h.quantile_hi(1.0), 7);
        assert_eq!(Histogram::new().quantile_hi(0.5), 0);
    }

    #[test]
    fn quantile_extremes_and_empty() {
        // Empty histogram: every quantile is 0.
        let h = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile_hi(q), 0);
        }
        // q = 0 asks for "at least 0 samples", satisfied by bucket 0.
        h.record(100);
        assert_eq!(h.quantile_hi(0.0), 0);
        // q = 1 must cover the maximum sample, including the top bucket.
        assert_eq!(h.quantile_hi(1.0), bucket_hi(bucket_index(100)));
        h.record(u64::MAX);
        assert_eq!(h.quantile_hi(1.0), u64::MAX);
        // Out-of-range q clamps rather than walking off the end.
        assert_eq!(h.quantile_hi(2.0), h.quantile_hi(1.0));
        assert_eq!(h.quantile_hi(-1.0), h.quantile_hi(0.0));
    }

    #[test]
    fn quantile_at_bucket_boundaries() {
        // 4 samples at exact power-of-two boundaries: 1, 2, 4, 8 land in
        // buckets 1, 2, 3, 4. Each cumulative fraction pins a bucket hi.
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8] {
            h.record(v);
        }
        assert_eq!(h.quantile_hi(0.25), bucket_hi(1)); // 1
        assert_eq!(h.quantile_hi(0.5), bucket_hi(2)); // 3
        assert_eq!(h.quantile_hi(0.75), bucket_hi(3)); // 7
        assert_eq!(h.quantile_hi(1.0), bucket_hi(4)); // 15
                                                      // Just past a boundary fraction, the next bucket answers.
        assert_eq!(h.quantile_hi(0.251), bucket_hi(2));
    }

    #[test]
    fn snapshot_matches_live_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 2, 4, 4, 4, 4, 4] {
            h.record(v);
        }
        let s = h.snapshot();
        for q in [0.0, 0.1, 0.3, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile_hi(q), h.quantile_hi(q), "q={q}");
        }
        assert_eq!(s.total(), h.total());
        assert_eq!(HistSnapshot::new().quantile_hi(0.5), 0);
    }

    #[test]
    fn snapshot_merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 9000]);
        let b = mk(&[2, 2, 4096]);
        let c = mk(&[u64::MAX, 0, 7]);
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        // a ⊕ b == b ⊕ a
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Identity: merging an empty snapshot changes nothing.
        let mut a_id = a.clone();
        a_id.merge(&HistSnapshot::new());
        assert_eq!(a_id, a);
        // The merged quantiles reflect the union of samples.
        assert_eq!(ab_c.total(), 9);
        assert_eq!(ab_c.quantile_hi(1.0), u64::MAX);
    }

    #[test]
    fn saturated_top_bucket_quantiles_are_the_upper_edge() {
        // Every sample in bucket 64 (the u64::MAX overflow bucket): all
        // quantiles must answer from the walk, not the fallback, and they
        // must all be the bucket's upper edge.
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(u64::MAX - 7);
        }
        for q in [0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile_hi(q), u64::MAX, "q={q}");
        }
        let s = h.snapshot();
        for q in [0.5, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile_hi(q), u64::MAX, "snapshot q={q}");
        }
    }

    #[test]
    fn quantiles_are_monotone_on_abort_heavy_distributions() {
        // An abort-heavy latency shape: a huge spike of cheap aborts plus a
        // thin expensive tail. The f64 product q·total can ceil above the
        // integer total at large counts; with the clamp, p50 ≤ p99 ≤ p999
        // must hold and p999 can never skip to the u64::MAX fallback.
        let mut s = HistSnapshot::new();
        let spike = Histogram::new();
        for _ in 0..100_000 {
            spike.record(300); // cheap abort path
        }
        let tail = Histogram::new();
        for _ in 0..37 {
            tail.record(2_000_000); // rare slow commit
        }
        s.merge(&spike.snapshot());
        s.merge(&tail.snapshot());
        let p50 = s.quantile_hi(0.5);
        let p99 = s.quantile_hi(0.99);
        let p999 = s.quantile_hi(0.999);
        assert!(p50 <= p99 && p99 <= p999, "p50={p50} p99={p99} p999={p999}");
        assert!(p999 < u64::MAX, "p999 fell through to the fallback");
        assert_eq!(s.quantile_hi(1.0), bucket_hi(bucket_index(2_000_000)));
    }

    #[test]
    fn pairs_round_trip_through_the_wire_form() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 4096, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let pairs = s.pairs();
        assert!(pairs.iter().all(|&(_, n)| n > 0));
        let back = HistSnapshot::from_pairs(&pairs).unwrap();
        assert_eq!(back, s);
        // Duplicate buckets accumulate; out-of-range buckets are rejected.
        let dup = HistSnapshot::from_pairs(&[(3, 1), (3, 2)]).unwrap();
        assert_eq!(dup.count(3), 3);
        assert!(HistSnapshot::from_pairs(&[(BUCKETS, 1)]).is_err());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.total(), 4000);
        assert_eq!(h.count(0), 4); // four zeros
    }
}
