//! # Virtual-time telemetry
//!
//! Observability for the simulated fabric: every RMA operation and every
//! synchronisation action can be recorded as a fixed-size [`Event`] carrying
//! its virtual start/completion times, transport, DMAPP completion flavour,
//! peer and window. On top of the raw event stream the subsystem keeps
//!
//! * per-op-class aggregates (count, bytes, total virtual ns),
//! * log2-bucketed latency and message-size [`Histogram`]s per class,
//! * per-peer traffic attribution (ops/bytes each origin sent each target),
//! * per-window attribution (ops/bytes/busy-time per window id).
//!
//! ## Cost discipline
//!
//! Telemetry is **off by default**. The disabled hot path is a single
//! relaxed atomic load and a branch — no allocation, no locks. When enabled,
//! recording is wait-free: atomic adds into the class aggregates plus a
//! single-producer ring/array write into the origin rank's private area
//! (ranks are threads, so "my rank's area" is single-writer by
//! construction; see [`ring`] for the exact contract).
//!
//! ## Enabling
//!
//! * environment: `FOMPI_TELEMETRY=1` (ring size via
//!   `FOMPI_TELEMETRY_RING`, default 65536 events/rank), read at
//!   [`crate::Fabric::new`];
//! * programmatic: [`crate::Fabric::new_traced`], or
//!   [`Telemetry::set_enabled`] on a fabric built with ring capacity.
//!
//! Aggregates work whenever `enabled` is set; retaining the raw event
//! stream additionally needs a non-zero ring capacity at construction.

pub mod event;
pub mod hist;
pub mod perfetto;
pub mod ring;

pub use event::{Event, EventKind, Flavor, NO_TARGET, NO_WIN};
pub use hist::{bucket_hi, bucket_index, bucket_lo, Histogram, BUCKETS};
pub use ring::EventRing;

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Default per-rank ring capacity when tracing is enabled.
pub const DEFAULT_RING_CAP: usize = 1 << 16;

/// Aggregates for one [`EventKind`].
#[derive(Debug, Default)]
pub struct OpStats {
    count: AtomicU64,
    bytes: AtomicU64,
    /// Total virtual latency, in integer ns.
    ns: AtomicU64,
    /// Latency distribution (virtual ns).
    pub lat: Histogram,
    /// Message-size distribution (bytes; RMA classes only).
    pub size: Histogram,
}

impl OpStats {
    /// Operations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total virtual ns spent (sum of per-op latencies).
    pub fn total_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Mean latency in virtual ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_ns() as f64 / n as f64
        }
    }
}

/// Per-peer traffic cell (origin → target).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerStats {
    /// RMA ops sent to this peer.
    pub ops: u64,
    /// Bytes sent to this peer.
    pub bytes: u64,
}

/// Per-window aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowStats {
    /// Puts targeting the window.
    pub puts: u64,
    /// Gets targeting the window.
    pub gets: u64,
    /// AMOs targeting the window.
    pub amos: u64,
    /// Synchronisation events scoped to the window.
    pub syncs: u64,
    /// Bytes moved through the window.
    pub bytes: u64,
    /// Total virtual ns spent in the window's operations.
    pub busy_ns: f64,
}

impl WindowStats {
    fn add(&mut self, ev: &Event) {
        match ev.kind {
            EventKind::Put => self.puts += 1,
            EventKind::Get => self.gets += 1,
            EventKind::Amo => self.amos += 1,
            _ => self.syncs += 1,
        }
        self.bytes += ev.bytes;
        self.busy_ns += ev.latency_ns();
    }

    fn merge(&mut self, other: &WindowStats) {
        self.puts += other.puts;
        self.gets += other.gets;
        self.amos += other.amos;
        self.syncs += other.syncs;
        self.bytes += other.bytes;
        self.busy_ns += other.busy_ns;
    }

    /// Total operations attributed to the window.
    pub fn ops(&self) -> u64 {
        self.puts + self.gets + self.amos + self.syncs
    }
}

/// One line of [`Telemetry::class_summary`].
#[derive(Debug, Clone, Copy)]
pub struct ClassSummary {
    /// The op class.
    pub kind: EventKind,
    /// Operations recorded.
    pub count: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Total virtual ns.
    pub total_ns: u64,
    /// Mean virtual ns per op.
    pub mean_ns: f64,
}

/// The per-rank single-writer area: event ring plus non-atomic attribution
/// maps (only the owning rank's thread touches them; drained at quiescent
/// points — same contract as [`EventRing`]).
struct RankLocal {
    ring: EventRing,
    wins: UnsafeCell<HashMap<u64, WindowStats>>,
    peers: UnsafeCell<Box<[PeerStats]>>,
}

// SAFETY: see `ring` module docs — single producer per rank, readers only at
// quiescent points (after the rank threads have been joined).
unsafe impl Sync for RankLocal {}

/// The telemetry hub: one per [`crate::Fabric`].
pub struct Telemetry {
    enabled: AtomicBool,
    ranks: Box<[RankLocal]>,
    stats: Box<[OpStats]>,
}

impl Telemetry {
    /// Telemetry for `p` ranks with explicit state: `enabled` switches
    /// aggregate recording on; `ring_cap` slots per rank retain the raw
    /// event stream (0 = aggregates only).
    pub fn with_capacity(p: usize, enabled: bool, ring_cap: usize) -> Self {
        Telemetry {
            enabled: AtomicBool::new(enabled),
            ranks: (0..p)
                .map(|_| RankLocal {
                    ring: EventRing::new(ring_cap),
                    wins: UnsafeCell::new(HashMap::new()),
                    peers: UnsafeCell::new(vec![PeerStats::default(); p].into_boxed_slice()),
                })
                .collect(),
            stats: (0..EventKind::COUNT).map(|_| OpStats::default()).collect(),
        }
    }

    /// Telemetry configured from the environment: enabled iff
    /// `FOMPI_TELEMETRY` is set to anything but `0`; ring capacity from
    /// `FOMPI_TELEMETRY_RING` (default [`DEFAULT_RING_CAP`]).
    pub fn from_env(p: usize) -> Self {
        let enabled = std::env::var("FOMPI_TELEMETRY").map(|v| v != "0").unwrap_or(false);
        let cap = if enabled {
            std::env::var("FOMPI_TELEMETRY_RING")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_RING_CAP)
        } else {
            0
        };
        Telemetry::with_capacity(p, enabled, cap)
    }

    /// Is recording on? This is the whole disabled hot path: one relaxed
    /// load and a branch at every call site.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggle recording. Enabling on a fabric built without ring capacity
    /// records aggregates only.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Rank count this hub was built for.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Record one event. Must be called on `ev.origin`'s thread (the rank's
    /// private areas are single-writer). No-op when disabled.
    #[inline]
    pub fn record(&self, ev: Event) {
        if !self.enabled() {
            return;
        }
        self.record_enabled(ev);
    }

    #[inline(never)]
    fn record_enabled(&self, ev: Event) {
        let s = &self.stats[ev.kind.index()];
        let ns = ev.latency_ns() as u64;
        s.count.fetch_add(1, Ordering::Relaxed);
        s.bytes.fetch_add(ev.bytes, Ordering::Relaxed);
        s.ns.fetch_add(ns, Ordering::Relaxed);
        s.lat.record(ns);
        if ev.kind.is_rma() {
            s.size.record(ev.bytes);
        }
        let Some(rl) = self.ranks.get(ev.origin as usize) else {
            return;
        };
        rl.ring.push(ev);
        // SAFETY: single-writer contract — we are on `ev.origin`'s thread.
        unsafe {
            if ev.kind.is_rma() && (ev.target as usize) < self.ranks.len() {
                let peers = &mut *rl.peers.get();
                let cell = &mut peers[ev.target as usize];
                cell.ops += 1;
                cell.bytes += ev.bytes;
            }
            if ev.win != NO_WIN {
                (*rl.wins.get()).entry(ev.win).or_default().add(&ev);
            }
        }
    }

    /// Aggregates for one op class (live; safe to read anytime).
    pub fn stats(&self, kind: EventKind) -> &OpStats {
        &self.stats[kind.index()]
    }

    /// Summary rows for all classes with at least one event.
    pub fn class_summary(&self) -> Vec<ClassSummary> {
        EventKind::ALL
            .iter()
            .map(|&kind| {
                let s = self.stats(kind);
                ClassSummary {
                    kind,
                    count: s.count(),
                    bytes: s.bytes(),
                    total_ns: s.total_ns(),
                    mean_ns: s.mean_ns(),
                }
            })
            .filter(|c| c.count > 0)
            .collect()
    }

    /// All retained events across ranks, sorted by start time.
    ///
    /// Quiescent-point only (after rank threads are joined) — see [`ring`].
    pub fn events(&self) -> Vec<Event> {
        let mut out: Vec<Event> = self.ranks.iter().flat_map(|r| r.ring.drain()).collect();
        out.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        out
    }

    /// Events lost to ring overwriting, across all ranks.
    pub fn dropped(&self) -> u64 {
        self.ranks.iter().map(|r| r.ring.dropped()).sum()
    }

    /// Per-peer traffic matrix, row-major `[origin][target]`.
    ///
    /// Quiescent-point only.
    pub fn peer_matrix(&self) -> Vec<Vec<PeerStats>> {
        self.ranks
            .iter()
            .map(|r| {
                // SAFETY: quiescent point — no producer running.
                unsafe { (*r.peers.get()).to_vec() }
            })
            .collect()
    }

    /// Per-window aggregates merged across ranks, sorted by window id.
    ///
    /// Quiescent-point only.
    pub fn window_summaries(&self) -> Vec<(u64, WindowStats)> {
        let mut merged: HashMap<u64, WindowStats> = HashMap::new();
        for r in &self.ranks {
            // SAFETY: quiescent point — no producer running.
            let wins = unsafe { &*r.wins.get() };
            for (id, w) in wins {
                merged.entry(*id).or_default().merge(w);
            }
        }
        let mut out: Vec<_> = merged.into_iter().collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Human-readable multi-section report (op classes, windows, peers).
    ///
    /// Quiescent-point only.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("== telemetry: op classes ==\n");
        out.push_str(&format!(
            "{:<12} {:>10} {:>14} {:>14} {:>12}\n",
            "class", "ops", "bytes", "total_ns", "mean_ns"
        ));
        for c in self.class_summary() {
            out.push_str(&format!(
                "{:<12} {:>10} {:>14} {:>14} {:>12.1}\n",
                c.kind.name(),
                c.count,
                c.bytes,
                c.total_ns,
                c.mean_ns
            ));
        }
        let wins = self.window_summaries();
        if !wins.is_empty() {
            out.push_str("== telemetry: windows ==\n");
            out.push_str(&format!(
                "{:<10} {:>8} {:>8} {:>8} {:>8} {:>14} {:>14}\n",
                "window", "puts", "gets", "amos", "syncs", "bytes", "busy_ns"
            ));
            for (id, w) in wins {
                out.push_str(&format!(
                    "{:<10} {:>8} {:>8} {:>8} {:>8} {:>14} {:>14.0}\n",
                    id, w.puts, w.gets, w.amos, w.syncs, w.bytes, w.busy_ns
                ));
            }
        }
        let peers = self.peer_matrix();
        let traffic: u64 = peers.iter().flatten().map(|c| c.ops).sum();
        if traffic > 0 {
            out.push_str("== telemetry: peer traffic (origin -> target: ops/bytes) ==\n");
            for (origin, row) in peers.iter().enumerate() {
                for (target, cell) in row.iter().enumerate() {
                    if cell.ops > 0 {
                        out.push_str(&format!(
                            "  {origin} -> {target}: {} ops, {} B\n",
                            cell.ops, cell.bytes
                        ));
                    }
                }
            }
        }
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(&format!("(ring overflow: {dropped} events dropped)\n"));
        }
        out
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("ranks", &self.ranks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Transport;

    fn put_ev(origin: u32, target: u32, win: u64, bytes: u64, t0: f64, t1: f64) -> Event {
        Event {
            kind: EventKind::Put,
            flavor: Flavor::Blocking,
            transport: Some(Transport::Dmapp),
            origin,
            target,
            win,
            bytes,
            t_start: t0,
            t_end: t1,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::with_capacity(2, false, 16);
        t.record(put_ev(0, 1, 7, 100, 0.0, 50.0));
        assert_eq!(t.stats(EventKind::Put).count(), 0);
        assert!(t.events().is_empty());
        assert!(t.class_summary().is_empty());
    }

    #[test]
    fn aggregates_and_events_flow() {
        let t = Telemetry::with_capacity(2, true, 16);
        t.record(put_ev(0, 1, 7, 100, 0.0, 50.0));
        t.record(put_ev(0, 1, 7, 300, 60.0, 160.0));
        let s = t.stats(EventKind::Put);
        assert_eq!(s.count(), 2);
        assert_eq!(s.bytes(), 400);
        assert_eq!(s.total_ns(), 150);
        assert!((s.mean_ns() - 75.0).abs() < 1e-9);
        assert_eq!(t.events().len(), 2);
        let sum = t.class_summary();
        assert_eq!(sum.len(), 1);
        assert_eq!(sum[0].count, 2);
    }

    #[test]
    fn window_and_peer_attribution() {
        let t = Telemetry::with_capacity(3, true, 16);
        t.record(put_ev(0, 1, 7, 100, 0.0, 10.0));
        t.record(put_ev(0, 2, 7, 50, 10.0, 30.0));
        t.record(put_ev(0, 1, 9, 8, 30.0, 31.0));
        // A windowless event attributes to no window.
        t.record(put_ev(0, 1, NO_WIN, 1, 31.0, 32.0));
        let wins = t.window_summaries();
        assert_eq!(wins.len(), 2);
        assert_eq!(wins[0].0, 7);
        assert_eq!(wins[0].1.puts, 2);
        assert_eq!(wins[0].1.bytes, 150);
        assert!((wins[0].1.busy_ns - 30.0).abs() < 1e-9);
        assert_eq!(wins[1].0, 9);
        let peers = t.peer_matrix();
        assert_eq!(peers[0][1], PeerStats { ops: 3, bytes: 109 });
        assert_eq!(peers[0][2], PeerStats { ops: 1, bytes: 50 });
        assert_eq!(peers[1][0], PeerStats::default());
    }

    #[test]
    fn sync_events_count_as_syncs() {
        let t = Telemetry::with_capacity(1, true, 16);
        t.record(Event {
            kind: EventKind::Fence,
            origin: 0,
            win: 5,
            t_start: 0.0,
            t_end: 2900.0,
            ..Event::default()
        });
        let wins = t.window_summaries();
        assert_eq!(wins[0].1.syncs, 1);
        assert_eq!(wins[0].1.puts, 0);
        assert_eq!(t.stats(EventKind::Fence).count(), 1);
    }

    #[test]
    fn multi_threaded_ranks_record_concurrently() {
        let t = std::sync::Arc::new(Telemetry::with_capacity(4, true, 1024));
        std::thread::scope(|s| {
            for rank in 0..4u32 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        t.record(put_ev(rank, (rank + 1) % 4, 1, i, i as f64, i as f64 + 1.0));
                    }
                });
            }
        });
        assert_eq!(t.stats(EventKind::Put).count(), 400);
        assert_eq!(t.events().len(), 400);
        assert_eq!(t.dropped(), 0);
        let wins = t.window_summaries();
        assert_eq!(wins[0].1.puts, 400);
        let peers = t.peer_matrix();
        assert_eq!(peers[2][3].ops, 100);
    }

    #[test]
    fn report_is_renderable() {
        let t = Telemetry::with_capacity(2, true, 16);
        t.record(put_ev(0, 1, 7, 100, 0.0, 50.0));
        let r = t.report();
        assert!(r.contains("op classes"));
        assert!(r.contains("put"));
        assert!(r.contains("windows"));
        assert!(r.contains("peer traffic"));
    }
}
