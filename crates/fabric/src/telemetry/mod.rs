//! # Virtual-time telemetry
//!
//! Observability for the simulated fabric: every RMA operation and every
//! synchronisation action can be recorded as a fixed-size [`Event`] carrying
//! its virtual start/completion times, transport, DMAPP completion flavour,
//! peer and window. On top of the raw event stream the subsystem keeps
//!
//! * per-op-class aggregates (count, bytes, total virtual ns),
//! * log2-bucketed latency and message-size [`Histogram`]s per class,
//! * per-peer traffic attribution (ops/bytes each origin sent each target),
//! * per-window attribution (ops/bytes/busy-time per window id).
//!
//! ## Cost discipline
//!
//! Telemetry is **off by default**. The disabled hot path is a single
//! relaxed atomic load and a branch — no allocation, no locks. When enabled,
//! recording is wait-free: atomic adds into the class aggregates plus a
//! single-producer ring/array write into the origin rank's private area
//! (ranks are threads, so "my rank's area" is single-writer by
//! construction; see [`ring`] for the exact contract).
//!
//! ## Enabling
//!
//! * environment: `FOMPI_TELEMETRY=1` (ring size via
//!   `FOMPI_TELEMETRY_RING`, default 65536 events/rank), read at
//!   [`crate::Fabric::new`];
//! * programmatic: [`crate::Fabric::new_traced`], or
//!   [`Telemetry::set_enabled`] on a fabric built with ring capacity.
//!
//! Aggregates work whenever `enabled` is set; retaining the raw event
//! stream additionally needs a non-zero ring capacity at construction.

pub mod event;
pub mod hist;
pub mod perfetto;
pub mod ring;

pub use event::{flow_id, flow_origin, Event, EventKind, Flavor, NO_FLOW, NO_TARGET, NO_WIN};
pub use hist::{bucket_hi, bucket_index, bucket_lo, HistSnapshot, Histogram, BUCKETS};
pub use ring::EventRing;

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Default per-rank ring capacity when tracing is enabled.
pub const DEFAULT_RING_CAP: usize = 1 << 16;

/// Per-rank flight-recorder capacity: the last-N window dumped on a crash.
pub const FLIGHT_CAP: usize = 256;

/// State bit: aggregate + ring recording ([`Telemetry::enabled`]).
const STATE_AGGR: u8 = 1 << 0;
/// State bit: flight recording ([`Telemetry::flight_enabled`]).
const STATE_FLIGHT: u8 = 1 << 1;

/// Aggregates for one [`EventKind`].
#[derive(Debug, Default)]
pub struct OpStats {
    count: AtomicU64,
    bytes: AtomicU64,
    /// Total virtual latency, in integer ns.
    ns: AtomicU64,
    /// Latency distribution (virtual ns).
    pub lat: Histogram,
    /// Message-size distribution (bytes; RMA classes only).
    pub size: Histogram,
}

impl OpStats {
    /// Operations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total virtual ns spent (sum of per-op latencies).
    pub fn total_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Mean latency in virtual ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_ns() as f64 / n as f64
        }
    }
}

/// Per-peer traffic cell (origin → target).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerStats {
    /// RMA ops sent to this peer.
    pub ops: u64,
    /// Bytes sent to this peer.
    pub bytes: u64,
}

/// Per-window aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowStats {
    /// Puts targeting the window.
    pub puts: u64,
    /// Gets targeting the window.
    pub gets: u64,
    /// AMOs targeting the window.
    pub amos: u64,
    /// Synchronisation events scoped to the window.
    pub syncs: u64,
    /// Bytes moved through the window.
    pub bytes: u64,
    /// Total virtual ns spent in the window's operations.
    pub busy_ns: f64,
}

impl WindowStats {
    fn add(&mut self, ev: &Event) {
        match ev.kind {
            EventKind::Put => self.puts += 1,
            EventKind::Get => self.gets += 1,
            EventKind::Amo => self.amos += 1,
            _ => self.syncs += 1,
        }
        self.bytes += ev.bytes;
        self.busy_ns += ev.latency_ns();
    }

    fn merge(&mut self, other: &WindowStats) {
        self.puts += other.puts;
        self.gets += other.gets;
        self.amos += other.amos;
        self.syncs += other.syncs;
        self.bytes += other.bytes;
        self.busy_ns += other.busy_ns;
    }

    /// Total operations attributed to the window.
    pub fn ops(&self) -> u64 {
        self.puts + self.gets + self.amos + self.syncs
    }
}

/// One line of [`Telemetry::class_summary`].
#[derive(Debug, Clone, Copy)]
pub struct ClassSummary {
    /// The op class.
    pub kind: EventKind,
    /// Operations recorded.
    pub count: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Total virtual ns.
    pub total_ns: u64,
    /// Mean virtual ns per op.
    pub mean_ns: f64,
}

/// The per-rank single-writer area: event ring plus non-atomic attribution
/// maps (only the owning rank's thread touches them; drained at quiescent
/// points — same contract as [`EventRing`]).
struct RankLocal {
    ring: EventRing,
    /// Independent last-N window for the flight recorder: kept even when
    /// the main ring is absent, dumped from the owning thread on a crash.
    flight: EventRing,
    wins: UnsafeCell<HashMap<u64, WindowStats>>,
    peers: UnsafeCell<Box<[PeerStats]>>,
}

// SAFETY: see `ring` module docs — single producer per rank, readers only at
// quiescent points (after the rank threads have been joined).
unsafe impl Sync for RankLocal {}

/// The telemetry hub: one per [`crate::Fabric`].
pub struct Telemetry {
    /// Bitmask of `STATE_*`: one relaxed load decides the whole hot path.
    state: AtomicU8,
    ranks: Box<[RankLocal]>,
    stats: Box<[OpStats]>,
    /// Per-target mailbox carrying the flow id of the most recent signal
    /// release aimed at that rank (best-effort causal linkage between
    /// `put_signal` and `signal_wait`; the real synchronisation happens
    /// through fabric memory).
    flow_signal: Box<[AtomicU64]>,
}

impl Telemetry {
    /// Telemetry for `p` ranks with explicit state: `enabled` switches
    /// aggregate recording on; `ring_cap` slots per rank retain the raw
    /// event stream (0 = aggregates only).
    pub fn with_capacity(p: usize, enabled: bool, ring_cap: usize) -> Self {
        Telemetry {
            state: AtomicU8::new(if enabled { STATE_AGGR } else { 0 }),
            ranks: (0..p)
                .map(|_| RankLocal {
                    ring: EventRing::new(ring_cap),
                    flight: EventRing::new(FLIGHT_CAP),
                    wins: UnsafeCell::new(HashMap::new()),
                    peers: UnsafeCell::new(vec![PeerStats::default(); p].into_boxed_slice()),
                })
                .collect(),
            stats: (0..EventKind::COUNT).map(|_| OpStats::default()).collect(),
            flow_signal: (0..p).map(|_| AtomicU64::new(NO_FLOW)).collect(),
        }
    }

    /// Telemetry configured from the environment: enabled iff
    /// `FOMPI_TELEMETRY` is set to anything but `0`; ring capacity from
    /// `FOMPI_TELEMETRY_RING` (default [`DEFAULT_RING_CAP`]).
    pub fn from_env(p: usize) -> Self {
        let enabled = std::env::var("FOMPI_TELEMETRY").map(|v| v != "0").unwrap_or(false);
        let cap = if enabled {
            std::env::var("FOMPI_TELEMETRY_RING")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_RING_CAP)
        } else {
            0
        };
        Telemetry::with_capacity(p, enabled, cap)
    }

    /// Is recording on? This is the whole disabled hot path: one relaxed
    /// load and a branch at every call site.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.state.load(Ordering::Relaxed) & STATE_AGGR != 0
    }

    /// Toggle recording. Enabling on a fabric built without ring capacity
    /// records aggregates only.
    pub fn set_enabled(&self, on: bool) {
        if on {
            self.state.fetch_or(STATE_AGGR, Ordering::Relaxed);
        } else {
            self.state.fetch_and(!STATE_AGGR, Ordering::Relaxed);
        }
    }

    /// Is *any* recording armed (aggregates or flight)? The gate event
    /// producers check before building an [`Event`]: one relaxed load.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.state.load(Ordering::Relaxed) != 0
    }

    /// Is the flight recorder armed (see [`FLIGHT_CAP`])?
    #[inline]
    pub fn flight_enabled(&self) -> bool {
        self.state.load(Ordering::Relaxed) & STATE_FLIGHT != 0
    }

    /// Arm or disarm the flight recorder. Independent of [`enabled`]:
    /// flight recording keeps only the per-rank last-N window and touches
    /// no aggregates, so the profiler can arm it without paying for full
    /// telemetry.
    ///
    /// [`enabled`]: Telemetry::enabled
    pub fn set_flight(&self, on: bool) {
        if on {
            self.state.fetch_or(STATE_FLIGHT, Ordering::Relaxed);
        } else {
            self.state.fetch_and(!STATE_FLIGHT, Ordering::Relaxed);
        }
    }

    /// Rank count this hub was built for.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Record one event. Must be called on `ev.origin`'s thread (the rank's
    /// private areas are single-writer). No-op when disabled. The disabled
    /// path is the same single relaxed load it always was — aggregate and
    /// flight recording share one state word.
    #[inline]
    pub fn record(&self, ev: Event) {
        let state = self.state.load(Ordering::Relaxed);
        if state == 0 {
            return;
        }
        self.record_armed(state, ev);
    }

    #[inline(never)]
    fn record_armed(&self, state: u8, ev: Event) {
        if state & STATE_FLIGHT != 0 {
            if let Some(rl) = self.ranks.get(ev.origin as usize) {
                rl.flight.push(ev);
            }
        }
        if state & STATE_AGGR != 0 {
            self.record_enabled(ev);
        }
    }

    fn record_enabled(&self, ev: Event) {
        let s = &self.stats[ev.kind.index()];
        let ns = ev.latency_ns() as u64;
        s.count.fetch_add(1, Ordering::Relaxed);
        s.bytes.fetch_add(ev.bytes, Ordering::Relaxed);
        s.ns.fetch_add(ns, Ordering::Relaxed);
        s.lat.record(ns);
        if ev.kind.is_rma() {
            s.size.record(ev.bytes);
        }
        let Some(rl) = self.ranks.get(ev.origin as usize) else {
            return;
        };
        rl.ring.push(ev);
        // SAFETY: single-writer contract — we are on `ev.origin`'s thread.
        unsafe {
            if ev.kind.is_rma() && (ev.target as usize) < self.ranks.len() {
                let peers = &mut *rl.peers.get();
                let cell = &mut peers[ev.target as usize];
                cell.ops += 1;
                cell.bytes += ev.bytes;
            }
            if ev.win != NO_WIN {
                (*rl.wins.get()).entry(ev.win).or_default().add(&ev);
            }
        }
    }

    /// Aggregates for one op class (live; safe to read anytime).
    pub fn stats(&self, kind: EventKind) -> &OpStats {
        &self.stats[kind.index()]
    }

    /// Summary rows for all classes with at least one event.
    pub fn class_summary(&self) -> Vec<ClassSummary> {
        EventKind::ALL
            .iter()
            .map(|&kind| {
                let s = self.stats(kind);
                ClassSummary {
                    kind,
                    count: s.count(),
                    bytes: s.bytes(),
                    total_ns: s.total_ns(),
                    mean_ns: s.mean_ns(),
                }
            })
            .filter(|c| c.count > 0)
            .collect()
    }

    /// All retained events across ranks, sorted by start time.
    ///
    /// Quiescent-point only (after rank threads are joined) — see [`ring`].
    pub fn events(&self) -> Vec<Event> {
        let mut out: Vec<Event> = self.ranks.iter().flat_map(|r| r.ring.drain()).collect();
        out.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        out
    }

    /// Events lost to ring overwriting, across all ranks.
    pub fn dropped(&self) -> u64 {
        self.ranks.iter().map(|r| r.ring.dropped()).sum()
    }

    /// The flight recorder's retained window for one rank, oldest first.
    ///
    /// Safe to call from `rank`'s own thread mid-run (it is the single
    /// producer, so it reads its own writes) — which is exactly what the
    /// crash-dump paths do — or from anywhere at a quiescent point.
    pub fn flight_events(&self, rank: u32) -> Vec<Event> {
        self.ranks.get(rank as usize).map(|r| r.flight.drain()).unwrap_or_default()
    }

    /// Publish the flow id of a signal release aimed at `target`, so the
    /// eventual `signal_wait` on that rank can join the flow. Best-effort:
    /// concurrent signals to one target keep only the latest flow.
    #[inline]
    pub fn publish_signal_flow(&self, target: u32, flow: u64) {
        if let Some(slot) = self.flow_signal.get(target as usize) {
            slot.store(flow, Ordering::Release);
        }
    }

    /// Take (and clear) the pending signal flow aimed at `rank`.
    #[inline]
    pub fn take_signal_flow(&self, rank: u32) -> u64 {
        match self.flow_signal.get(rank as usize) {
            Some(slot) => slot.swap(NO_FLOW, Ordering::Acquire),
            None => NO_FLOW,
        }
    }

    /// Per-peer traffic matrix, row-major `[origin][target]`.
    ///
    /// Quiescent-point only.
    pub fn peer_matrix(&self) -> Vec<Vec<PeerStats>> {
        self.ranks
            .iter()
            .map(|r| {
                // SAFETY: quiescent point — no producer running.
                unsafe { (*r.peers.get()).to_vec() }
            })
            .collect()
    }

    /// Per-window aggregates merged across ranks, sorted by window id.
    ///
    /// Quiescent-point only.
    pub fn window_summaries(&self) -> Vec<(u64, WindowStats)> {
        let mut merged: HashMap<u64, WindowStats> = HashMap::new();
        for r in &self.ranks {
            // SAFETY: quiescent point — no producer running.
            let wins = unsafe { &*r.wins.get() };
            for (id, w) in wins {
                merged.entry(*id).or_default().merge(w);
            }
        }
        let mut out: Vec<_> = merged.into_iter().collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Human-readable multi-section report (op classes, windows, peers).
    ///
    /// Quiescent-point only.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("== telemetry: op classes ==\n");
        out.push_str(&format!(
            "{:<12} {:>10} {:>14} {:>14} {:>12}\n",
            "class", "ops", "bytes", "total_ns", "mean_ns"
        ));
        for c in self.class_summary() {
            out.push_str(&format!(
                "{:<12} {:>10} {:>14} {:>14} {:>12.1}\n",
                c.kind.name(),
                c.count,
                c.bytes,
                c.total_ns,
                c.mean_ns
            ));
        }
        let wins = self.window_summaries();
        if !wins.is_empty() {
            out.push_str("== telemetry: windows ==\n");
            out.push_str(&format!(
                "{:<10} {:>8} {:>8} {:>8} {:>8} {:>14} {:>14}\n",
                "window", "puts", "gets", "amos", "syncs", "bytes", "busy_ns"
            ));
            for (id, w) in wins {
                out.push_str(&format!(
                    "{:<10} {:>8} {:>8} {:>8} {:>8} {:>14} {:>14.0}\n",
                    id, w.puts, w.gets, w.amos, w.syncs, w.bytes, w.busy_ns
                ));
            }
        }
        let peers = self.peer_matrix();
        let traffic: u64 = peers.iter().flatten().map(|c| c.ops).sum();
        if traffic > 0 {
            out.push_str("== telemetry: peer traffic (origin -> target: ops/bytes) ==\n");
            for (origin, row) in peers.iter().enumerate() {
                for (target, cell) in row.iter().enumerate() {
                    if cell.ops > 0 {
                        out.push_str(&format!(
                            "  {origin} -> {target}: {} ops, {} B\n",
                            cell.ops, cell.bytes
                        ));
                    }
                }
            }
        }
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(&format!(
                "WARNING: telemetry ring overflow — {dropped} events dropped; \
                 the event stream above is truncated (raise FOMPI_TELEMETRY_RING)\n"
            ));
        }
        out
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("ranks", &self.ranks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Transport;

    fn put_ev(origin: u32, target: u32, win: u64, bytes: u64, t0: f64, t1: f64) -> Event {
        Event {
            kind: EventKind::Put,
            flavor: Flavor::Blocking,
            transport: Some(Transport::Dmapp),
            origin,
            target,
            win,
            bytes,
            flow: NO_FLOW,
            t_start: t0,
            t_end: t1,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::with_capacity(2, false, 16);
        t.record(put_ev(0, 1, 7, 100, 0.0, 50.0));
        assert_eq!(t.stats(EventKind::Put).count(), 0);
        assert!(t.events().is_empty());
        assert!(t.class_summary().is_empty());
    }

    #[test]
    fn aggregates_and_events_flow() {
        let t = Telemetry::with_capacity(2, true, 16);
        t.record(put_ev(0, 1, 7, 100, 0.0, 50.0));
        t.record(put_ev(0, 1, 7, 300, 60.0, 160.0));
        let s = t.stats(EventKind::Put);
        assert_eq!(s.count(), 2);
        assert_eq!(s.bytes(), 400);
        assert_eq!(s.total_ns(), 150);
        assert!((s.mean_ns() - 75.0).abs() < 1e-9);
        assert_eq!(t.events().len(), 2);
        let sum = t.class_summary();
        assert_eq!(sum.len(), 1);
        assert_eq!(sum[0].count, 2);
    }

    #[test]
    fn window_and_peer_attribution() {
        let t = Telemetry::with_capacity(3, true, 16);
        t.record(put_ev(0, 1, 7, 100, 0.0, 10.0));
        t.record(put_ev(0, 2, 7, 50, 10.0, 30.0));
        t.record(put_ev(0, 1, 9, 8, 30.0, 31.0));
        // A windowless event attributes to no window.
        t.record(put_ev(0, 1, NO_WIN, 1, 31.0, 32.0));
        let wins = t.window_summaries();
        assert_eq!(wins.len(), 2);
        assert_eq!(wins[0].0, 7);
        assert_eq!(wins[0].1.puts, 2);
        assert_eq!(wins[0].1.bytes, 150);
        assert!((wins[0].1.busy_ns - 30.0).abs() < 1e-9);
        assert_eq!(wins[1].0, 9);
        let peers = t.peer_matrix();
        assert_eq!(peers[0][1], PeerStats { ops: 3, bytes: 109 });
        assert_eq!(peers[0][2], PeerStats { ops: 1, bytes: 50 });
        assert_eq!(peers[1][0], PeerStats::default());
    }

    #[test]
    fn sync_events_count_as_syncs() {
        let t = Telemetry::with_capacity(1, true, 16);
        t.record(Event {
            kind: EventKind::Fence,
            origin: 0,
            win: 5,
            t_start: 0.0,
            t_end: 2900.0,
            ..Event::default()
        });
        let wins = t.window_summaries();
        assert_eq!(wins[0].1.syncs, 1);
        assert_eq!(wins[0].1.puts, 0);
        assert_eq!(t.stats(EventKind::Fence).count(), 1);
    }

    #[test]
    fn multi_threaded_ranks_record_concurrently() {
        let t = std::sync::Arc::new(Telemetry::with_capacity(4, true, 1024));
        std::thread::scope(|s| {
            for rank in 0..4u32 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        t.record(put_ev(rank, (rank + 1) % 4, 1, i, i as f64, i as f64 + 1.0));
                    }
                });
            }
        });
        assert_eq!(t.stats(EventKind::Put).count(), 400);
        assert_eq!(t.events().len(), 400);
        assert_eq!(t.dropped(), 0);
        let wins = t.window_summaries();
        assert_eq!(wins[0].1.puts, 400);
        let peers = t.peer_matrix();
        assert_eq!(peers[2][3].ops, 100);
    }

    #[test]
    fn report_is_renderable() {
        let t = Telemetry::with_capacity(2, true, 16);
        t.record(put_ev(0, 1, 7, 100, 0.0, 50.0));
        let r = t.report();
        assert!(r.contains("op classes"));
        assert!(r.contains("put"));
        assert!(r.contains("windows"));
        assert!(r.contains("peer traffic"));
        assert!(!r.contains("WARNING"), "no drops, no warning");
    }

    #[test]
    fn report_warns_loudly_on_ring_overflow() {
        let t = Telemetry::with_capacity(1, true, 2);
        for i in 0..5 {
            t.record(put_ev(0, 0, 7, i, i as f64, i as f64 + 1.0));
        }
        assert_eq!(t.dropped(), 3);
        let r = t.report();
        assert!(r.contains("WARNING"), "drops must be loud: {r}");
        assert!(r.contains("3 events dropped"), "{r}");
        assert!(r.contains("FOMPI_TELEMETRY_RING"), "{r}");
    }

    #[test]
    fn flight_recorder_is_independent_of_aggregates() {
        let t = Telemetry::with_capacity(2, false, 0);
        t.set_flight(true);
        assert!(t.flight_enabled());
        assert!(!t.enabled());
        t.record(put_ev(0, 1, 7, 100, 0.0, 50.0));
        t.record(put_ev(0, 1, 7, 200, 50.0, 90.0));
        // Aggregates untouched, flight window kept.
        assert_eq!(t.stats(EventKind::Put).count(), 0);
        assert!(t.events().is_empty());
        let fl = t.flight_events(0);
        assert_eq!(fl.len(), 2);
        assert_eq!(fl[1].bytes, 200);
        assert!(t.flight_events(1).is_empty());
        t.set_flight(false);
        t.record(put_ev(0, 1, 7, 300, 90.0, 95.0));
        assert_eq!(t.flight_events(0).len(), 2, "disarmed flight records nothing");
    }

    #[test]
    fn flight_keeps_only_the_last_window() {
        let t = Telemetry::with_capacity(1, true, 0);
        t.set_flight(true);
        let n = (FLIGHT_CAP + 10) as u64;
        for i in 0..n {
            t.record(put_ev(0, 0, 7, i, i as f64, i as f64 + 1.0));
        }
        let fl = t.flight_events(0);
        assert_eq!(fl.len(), FLIGHT_CAP);
        assert_eq!(fl[0].bytes, 10);
        assert_eq!(fl.last().unwrap().bytes, n - 1);
    }

    #[test]
    fn signal_flow_mailbox_roundtrip() {
        let t = Telemetry::with_capacity(2, true, 0);
        assert_eq!(t.take_signal_flow(1), NO_FLOW);
        let f = flow_id(0, 42);
        t.publish_signal_flow(1, f);
        assert_eq!(t.take_signal_flow(1), f);
        assert_eq!(t.take_signal_flow(1), NO_FLOW, "take clears the slot");
        // Out-of-range targets are ignored, not a panic.
        t.publish_signal_flow(99, f);
        assert_eq!(t.take_signal_flow(99), NO_FLOW);
    }
}
