//! Per-rank communication endpoint — the DMAPP-like API surface.
//!
//! Every operation comes in the three DMAPP completion flavours (§2.1):
//!
//! * **blocking** — returns when remotely complete (clock joined with the
//!   completion time);
//! * **explicit nonblocking** (`*_nb`) — returns an [`NbHandle`] that
//!   [`Endpoint::wait`] completes individually;
//! * **implicit nonblocking** (`*_implicit`) — completed only in bulk by
//!   [`Endpoint::gsync`] (or per-target by [`Endpoint::flush_target`],
//!   which Gemini exposes as completion queues per endpoint).
//!
//! Data always moves immediately (the simulation is sequentially consistent
//! at the memory level); the flavours differ in how *virtual time* is
//! accounted, which is what the paper's figures measure.
//!
//! ## Stamped sync variables
//!
//! Protocol words that other ranks block on (completion counters, lock
//! words, matching-list heads) are 16-byte cells: a value word followed by a
//! timestamp word. The `*_sync` operations update/read both so that causal
//! virtual time flows through synchronisation.

use crate::amo::AmoOp;
use crate::batch::{Burst, BurstKind};
use crate::clock::{bits_to_stamp, stamp_to_bits, Clock};
use crate::cost::Transport;
use crate::error::FabricError;
use crate::mc::{McObj, McOp};
use crate::notify::NotifyRecord;
use crate::segment::SegKey;
use crate::shadow::AccessKind;
use crate::stripes::StripedHorizon;
use crate::telemetry::{flow_id, Event, EventKind, Flavor, NO_FLOW, NO_TARGET};
use crate::Fabric;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Completion handle for an explicit-nonblocking operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NbHandle {
    /// Virtual time at which the operation is remotely complete.
    pub t_complete: f64,
}

/// Per-rank endpoint. Owns the rank's virtual [`Clock`]; deliberately not
/// `Send`: it lives on its rank's thread.
///
/// Implicit-nonblocking completion horizons are tracked by a
/// [`StripedHorizon`]: lock-free striped `fetch_max` counters that
/// `flush_target`/`gsync` read without a hash lookup, a dynamic borrow, or
/// cross-peer contention. When issue-side batching is enabled
/// ([`Endpoint::set_batching`], or `FOMPI_BATCH`/the fabric default), small
/// implicit puts and non-fetching AMOs are write-combined into per-target
/// injection bursts (see [`crate::batch`]) that retire at the next
/// flush/gsync/ordered release or when coalescing stops.
pub struct Endpoint {
    fabric: Arc<Fabric>,
    rank: u32,
    clock: Clock,
    pending: StripedHorizon,
    /// Open injection bursts, one per target. A BTree so drains walk
    /// targets in a deterministic order.
    bursts: RefCell<BTreeMap<u32, Burst>>,
    /// Issue-side batching switch (default: the fabric's batch default).
    batch: Cell<bool>,
    /// Telemetry window scope: the window id upper layers attribute
    /// subsequent operations to (0 = none). See [`Endpoint::set_trace_win`].
    trace_win: Cell<u64>,
    /// Next per-rank flow sequence number (see [`crate::telemetry::flow_id`]).
    /// Advances only while tracing is armed, so disabled runs pay nothing.
    flow_seq: Cell<u64>,
    /// The causal flow scope in force: operations issued while it is
    /// nonzero carry this flow id (0 = no scope). See [`Endpoint::flow_open`].
    cur_flow: Cell<u64>,
}

impl Endpoint {
    /// Create the endpoint for `rank` on `fabric`.
    pub fn new(fabric: Arc<Fabric>, rank: u32) -> Self {
        let batch = fabric.batch_default();
        Self {
            fabric,
            rank,
            clock: Clock::new(),
            pending: StripedHorizon::new(),
            bursts: RefCell::new(BTreeMap::new()),
            batch: Cell::new(batch),
            trace_win: Cell::new(0),
            flow_seq: Cell::new(0),
            cur_flow: Cell::new(NO_FLOW),
        }
    }

    /// The owning rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The shared fabric.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// This rank's virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Charge `ns` of CPU time (software overhead, compute, ...).
    pub fn charge(&self, ns: f64) {
        self.clock.advance(ns);
    }

    /// Charge `n` floating-point operations of compute.
    pub fn charge_flops(&self, n: f64) {
        self.clock.advance(n * self.fabric.model().ns_per_flop);
    }

    /// Transport used to reach `target`.
    pub fn transport_to(&self, target: u32) -> Transport {
        self.fabric.transport(self.rank, target)
    }

    // ----------------------------------------------------------- telemetry

    /// Set the telemetry window scope: RMA/sync events recorded after this
    /// call are attributed to window `win` (the window layer passes its
    /// symmetric meta id; 0 clears the scope). Returns the previous scope so
    /// nested callers can restore it. A few-instruction no-op cost.
    #[inline]
    pub fn set_trace_win(&self, win: u64) -> u64 {
        self.trace_win.replace(win)
    }

    /// Current telemetry window scope.
    #[inline]
    pub fn trace_win(&self) -> u64 {
        self.trace_win.get()
    }

    // ------------------------------------------------------- causal flows

    /// Open a causal flow scope: operations issued until the matching
    /// [`Endpoint::flow_close`] carry one fresh flow id, so a multi-part
    /// primitive (notified put = data put + notification post) shows up in
    /// the trace as a single origin→target flow arrow. Returns the
    /// previous scope for the caller to restore; an already-open scope is
    /// reused (nested callers join the outer flow). When tracing is off
    /// this is one relaxed load — no id is allocated and ops carry 0.
    #[inline]
    pub fn flow_open(&self) -> u64 {
        let prev = self.cur_flow.get();
        if prev == NO_FLOW && self.fabric.telemetry().tracing() {
            let seq = self.flow_seq.get();
            self.flow_seq.set(seq + 1);
            self.cur_flow.set(flow_id(self.rank, seq));
        }
        prev
    }

    /// Close a flow scope opened by [`Endpoint::flow_open`], restoring the
    /// previous scope it returned.
    #[inline]
    pub fn flow_close(&self, prev: u64) {
        self.cur_flow.set(prev);
    }

    /// The flow id in scope ([`NO_FLOW`] when none). Upper layers stash
    /// this next to protocol words their peers poll so the consumer side
    /// can join the flow (see [`crate::telemetry::Telemetry::take_signal_flow`]).
    #[inline]
    pub fn current_flow(&self) -> u64 {
        self.cur_flow.get()
    }

    /// Record target-side consumption of a flow-carrying event — the
    /// notify-ring pop or signal-wait completion that observes another
    /// rank's operation. `source` is the producing rank, `t_start` when
    /// this rank began waiting, `flow` the id carried by the consumed
    /// record (0 traces a plain wait with no arrow). The event spans
    /// `t_start..now` so the flow arrow terminates inside the wait span.
    #[inline]
    pub fn trace_flow_consume(
        &self,
        kind: EventKind,
        source: u32,
        t_start: f64,
        flow: u64,
        bytes: u64,
    ) {
        let tel = self.fabric.telemetry();
        if !tel.tracing() {
            return;
        }
        tel.record(Event {
            kind,
            flavor: Flavor::NotApplicable,
            transport: (source != NO_TARGET && source != self.rank)
                .then(|| self.transport_to(source)),
            origin: self.rank,
            target: source,
            win: self.trace_win.get(),
            bytes,
            flow,
            t_start,
            t_end: self.clock.now(),
        });
    }

    /// Record an RMA data operation (called by the op implementations).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn trace_op(
        &self,
        kind: EventKind,
        flavor: Flavor,
        transport: Transport,
        target: u32,
        bytes: u64,
        flow: u64,
        t_start: f64,
        t_end: f64,
    ) {
        let tel = self.fabric.telemetry();
        if !tel.tracing() {
            return;
        }
        tel.record(Event {
            kind,
            flavor,
            transport: Some(transport),
            origin: self.rank,
            target,
            win: self.trace_win.get(),
            bytes,
            flow,
            t_start,
            t_end,
        });
    }

    /// Record a synchronisation event spanning `t_start..now` against the
    /// current window scope. `target` is the peer involved, or
    /// [`NO_TARGET`] for collective/epoch-wide actions. Upper layers (fence,
    /// PSCW, lock, flush) call this at epoch entry/exit; the disabled path
    /// is one atomic load and a branch.
    #[inline]
    pub fn trace_sync(&self, kind: EventKind, target: u32, t_start: f64) {
        let tel = self.fabric.telemetry();
        if !tel.tracing() {
            return;
        }
        tel.record(Event {
            kind,
            flavor: Flavor::NotApplicable,
            transport: (target != NO_TARGET).then(|| self.transport_to(target)),
            origin: self.rank,
            target,
            win: self.trace_win.get(),
            bytes: 0,
            flow: NO_FLOW,
            t_start,
            t_end: self.clock.now(),
        });
    }

    // -------------------------------------------------------------- faults
    //
    // Fault draws happen only at issue-side call sites executed a
    // deterministic number of times (put/get/AMO issue, releases, gsync) —
    // never inside polling primitives (`read_sync`, `amo_sync` retry
    // loops), whose call counts depend on thread scheduling. See
    // [`crate::faults`] for the determinism contract.

    /// Record an injected perturbation against the current window scope.
    #[inline]
    fn trace_fault(&self, kind: EventKind, target: u32, t_start: f64, t_end: f64) {
        let tel = self.fabric.telemetry();
        if !tel.tracing() {
            return;
        }
        tel.record(Event {
            kind,
            flavor: Flavor::NotApplicable,
            transport: (target != NO_TARGET).then(|| self.transport_to(target)),
            origin: self.rank,
            target,
            win: self.trace_win.get(),
            bytes: 0,
            flow: NO_FLOW,
            t_start,
            t_end,
        });
    }

    /// Draw and apply issue-side faults for one operation toward `target`
    /// whose unperturbed wire latency is `base_lat`. Rank pauses and
    /// injection-queue stalls are charged to the clock here, at issue;
    /// the return value is extra *completion* latency (jitter + spike,
    /// plus a retirement delay when `delayable`) for the caller to fold
    /// into the op's completion time. One relaxed load when disabled.
    #[inline]
    fn apply_faults(&self, target: u32, base_lat: f64, delayable: bool) -> f64 {
        let faults = self.fabric.faults();
        if !faults.active() {
            return 0.0;
        }
        self.apply_faults_slow(faults, target, base_lat, delayable)
    }

    #[inline(never)]
    fn apply_faults_slow(
        &self,
        faults: &crate::faults::Faults,
        target: u32,
        base_lat: f64,
        delayable: bool,
    ) -> f64 {
        let d = faults.draw_op(self.rank, base_lat, delayable);
        if d.pause_ns > 0.0 {
            let t0 = self.clock.now();
            self.clock.advance(d.pause_ns);
            self.trace_fault(EventKind::FaultPause, target, t0, self.clock.now());
        }
        if d.stall_ns > 0.0 {
            let t0 = self.clock.now();
            self.clock.advance(d.stall_ns);
            self.trace_fault(EventKind::FaultBackpressure, target, t0, self.clock.now());
        }
        if d.extra_ns > 0.0 {
            let t0 = self.clock.now();
            self.trace_fault(EventKind::FaultJitter, target, t0, t0 + d.extra_ns);
        }
        if d.delay_ns > 0.0 {
            let t0 = self.clock.now();
            self.trace_fault(EventKind::FaultDelay, target, t0, t0 + d.delay_ns);
        }
        d.extra_ns + d.delay_ns
    }

    /// Backpressure check for explicit-nonblocking issues: under an armed
    /// plan the injection queue may refuse the op outright — nothing is
    /// issued and the caller must retry after the hinted delay.
    #[inline]
    fn check_reject(&self, target: u32) -> Result<(), FabricError> {
        let faults = self.fabric.faults();
        if !faults.active() {
            return Ok(());
        }
        if let Some(retry_after_ns) = faults.draw_reject(self.rank) {
            let t0 = self.clock.now();
            self.trace_fault(EventKind::FaultBackpressure, target, t0, t0);
            return Err(FabricError::Backpressure { retry_after_ns });
        }
        Ok(())
    }

    fn bounds(
        &self,
        key: SegKey,
        off: usize,
        len: usize,
    ) -> Result<Arc<crate::Segment>, FabricError> {
        let seg = self.fabric.resolve(key)?;
        if !seg.check(off, len) {
            return Err(FabricError::OutOfBounds { key, offset: off, len, seg_len: seg.len() });
        }
        Ok(seg)
    }

    fn note_pending(&self, target: u32, t: f64) {
        self.pending.note(target, t);
    }

    // ------------------------------------------------ issue-side batching

    /// Is issue-side batching enabled on this endpoint?
    #[inline]
    pub fn batching(&self) -> bool {
        self.batch.get()
    }

    /// Enable/disable issue-side batching (see [`crate::batch`]). Returns
    /// the previous setting. Disabling retires any open bursts so no
    /// completion accounting is left behind.
    pub fn set_batching(&self, on: bool) -> bool {
        let prev = self.batch.replace(on);
        if prev && !on {
            self.drain_all();
        }
        prev
    }

    /// Number of open (not yet retired) injection bursts — for tests and
    /// introspection.
    pub fn open_bursts(&self) -> usize {
        self.bursts.borrow().len()
    }

    /// Retire the open burst toward `target`, if any, folding its
    /// completion horizon into the striped counters. Charges no CPU time:
    /// the burst's injection and gaps were paid at issue.
    pub fn drain_target(&self, target: u32) {
        let b = self.bursts.borrow_mut().remove(&target);
        if let Some(b) = b {
            self.retire(b, EventKind::BatchFlush);
        }
    }

    /// Retire every open burst (deterministic target order).
    pub fn drain_all(&self) {
        let drained = std::mem::take(&mut *self.bursts.borrow_mut());
        for b in drained.into_values() {
            self.retire(b, EventKind::BatchFlush);
        }
    }

    /// Append one issued operation to the target's open burst, or retire
    /// the incompatible burst and open a fresh one. The first op of a burst
    /// pays the full injection overhead `o`; each coalesced member pays
    /// only the gap `g`.
    fn enqueue(&self, key: SegKey, kind: BurstKind, off: usize, len: usize, extra_ns: f64) {
        let t = self.transport_to(key.rank);
        let m = self.fabric.model();
        let mut bursts = self.bursts.borrow_mut();
        if let Some(b) = bursts.get_mut(&key.rank) {
            if b.accepts(key, kind, off, len, m.dmapp_proto_change_bytes, m.batch_max_ops) {
                self.clock.advance(m.gap(t));
                b.push(len, extra_ns);
                return;
            }
            let old = bursts.remove(&key.rank).expect("open burst just observed");
            self.retire(old, EventKind::BatchSplit);
        }
        let t_open = self.clock.now();
        self.clock.advance(m.inject(t));
        bursts.insert(
            key.rank,
            Burst::open(key, kind, off, len, extra_ns, t_open, self.cur_flow.get()),
        );
    }

    /// Compute a retired burst's completion horizon and record it. Puts
    /// ship as one wire message of the combined size; AMO chains pipeline
    /// behind the first AMO at gap spacing. The slowest member's fault
    /// extra delays the whole burst.
    fn retire(&self, b: Burst, how: EventKind) {
        let t = self.transport_to(b.key.rank);
        let m = self.fabric.model();
        let wire = match b.kind {
            BurstKind::Put => m.put_latency(t, b.len),
            BurstKind::Amo => m.amo_latency(t) + (b.ops - 1) as f64 * m.gap(t),
        };
        let t_complete = self.clock.now() + wire + b.extra_ns;
        self.pending.note(b.key.rank, t_complete);
        let c = self.fabric.counters();
        c.batch_flushes.fetch_add(1, Ordering::Relaxed);
        if how == EventKind::BatchSplit {
            c.batch_splits.fetch_add(1, Ordering::Relaxed);
        }
        let kind = match b.kind {
            BurstKind::Put => EventKind::Put,
            BurstKind::Amo => EventKind::Amo,
        };
        // One RMA span for the whole burst (bytes = combined payload) plus
        // the batch_* span covering its issue window. The burst carries its
        // first member's flow — one wire message, one flow.
        self.trace_op(
            kind,
            Flavor::Implicit,
            t,
            b.key.rank,
            b.len as u64,
            b.flow,
            b.t_open,
            t_complete,
        );
        self.trace_sync(how, b.key.rank, b.t_open);
    }

    /// Batched implicit put: data moves eagerly, the completion horizon is
    /// accounted when the burst retires. Faults are still drawn per op.
    fn put_batched(&self, key: SegKey, off: usize, src: &[u8]) -> Result<(), FabricError> {
        let wall = self.fabric.profiler().start();
        let seg = self.bounds(key, off, src.len())?;
        self.mc_seg(key, off, src.len(), AccessKind::Put, false, "put");
        let t = self.transport_to(key.rank);
        let m = self.fabric.model();
        let extra = self.apply_faults(key.rank, m.put_latency(t, src.len()), true);
        seg.write(off, src);
        let c = self.fabric.counters();
        c.puts.fetch_add(1, Ordering::Relaxed);
        c.bytes_put.fetch_add(src.len() as u64, Ordering::Relaxed);
        c.batched_ops.fetch_add(1, Ordering::Relaxed);
        self.enqueue(key, BurstKind::Put, off, src.len(), extra);
        self.fabric.profiler().finish(EventKind::Put, wall);
        Ok(())
    }

    /// Batched implicit non-fetching AMO (memory effect applied eagerly).
    fn amo_batched(
        &self,
        key: SegKey,
        off: usize,
        op: AmoOp,
        operand: u64,
    ) -> Result<(), FabricError> {
        let wall = self.fabric.profiler().start();
        let seg = self.bounds(key, off, 8)?;
        let t = self.transport_to(key.rank);
        let m = self.fabric.model();
        let extra = self.apply_faults(key.rank, m.amo_latency(t), true);
        seg.amo(off, op, operand, 0);
        let c = self.fabric.counters();
        c.amos.fetch_add(1, Ordering::Relaxed);
        c.bytes_amo.fetch_add(8, Ordering::Relaxed);
        c.batched_ops.fetch_add(1, Ordering::Relaxed);
        self.enqueue(key, BurstKind::Amo, off, 8, extra);
        self.fabric.profiler().finish(EventKind::Amo, wall);
        Ok(())
    }

    // ----------------------------------------------------------------- put

    fn put_raw(
        &self,
        key: SegKey,
        off: usize,
        src: &[u8],
        flavor: Flavor,
    ) -> Result<f64, FabricError> {
        let wall = self.fabric.profiler().start();
        let seg = self.bounds(key, off, src.len())?;
        self.mc_seg(key, off, src.len(), AccessKind::Put, false, "put");
        let t = self.transport_to(key.rank);
        let m = self.fabric.model();
        let extra =
            self.apply_faults(key.rank, m.put_latency(t, src.len()), flavor != Flavor::Blocking);
        let t_start = self.clock.now();
        self.clock.advance(m.inject(t));
        let t_complete = self.clock.now() + m.put_latency(t, src.len()) + extra;
        seg.write(off, src);
        let c = self.fabric.counters();
        c.puts.fetch_add(1, Ordering::Relaxed);
        c.bytes_put.fetch_add(src.len() as u64, Ordering::Relaxed);
        self.trace_op(
            EventKind::Put,
            flavor,
            t,
            key.rank,
            src.len() as u64,
            self.cur_flow.get(),
            t_start,
            t_complete,
        );
        self.fabric.profiler().finish(EventKind::Put, wall);
        Ok(t_complete)
    }

    /// Blocking put: returns when remotely complete.
    pub fn put(&self, key: SegKey, off: usize, src: &[u8]) -> Result<(), FabricError> {
        let t = self.put_raw(key, off, src, Flavor::Blocking)?;
        self.clock.join(t);
        Ok(())
    }

    /// Explicit-nonblocking put. Under an armed fault plan the issue may
    /// be rejected with [`FabricError::Backpressure`]; nothing was issued
    /// and the caller may retry after the hinted delay.
    pub fn put_nb(&self, key: SegKey, off: usize, src: &[u8]) -> Result<NbHandle, FabricError> {
        self.check_reject(key.rank)?;
        let t = self.put_raw(key, off, src, Flavor::Nonblocking)?;
        Ok(NbHandle { t_complete: t })
    }

    /// Implicit-nonblocking put, completed by [`Endpoint::gsync`]. With
    /// batching enabled, small puts (below the protocol-change size)
    /// write-combine into the target's open burst; large puts always take
    /// the rendezvous-style unbatched path.
    pub fn put_implicit(&self, key: SegKey, off: usize, src: &[u8]) -> Result<(), FabricError> {
        if self.batch.get() && src.len() < self.fabric.model().dmapp_proto_change_bytes {
            return self.put_batched(key, off, src);
        }
        let t = self.put_raw(key, off, src, Flavor::Implicit)?;
        self.note_pending(key.rank, t);
        Ok(())
    }

    // ----------------------------------------------------------------- get

    fn get_raw(
        &self,
        key: SegKey,
        off: usize,
        dst: &mut [u8],
        flavor: Flavor,
    ) -> Result<f64, FabricError> {
        let wall = self.fabric.profiler().start();
        let seg = self.bounds(key, off, dst.len())?;
        self.mc_seg(key, off, dst.len(), AccessKind::Get, false, "get");
        let t = self.transport_to(key.rank);
        let m = self.fabric.model();
        let extra =
            self.apply_faults(key.rank, m.get_latency(t, dst.len()), flavor != Flavor::Blocking);
        let t_start = self.clock.now();
        self.clock.advance(m.inject(t));
        let t_complete = self.clock.now() + m.get_latency(t, dst.len()) + extra;
        seg.read(off, dst);
        let c = self.fabric.counters();
        c.gets.fetch_add(1, Ordering::Relaxed);
        c.bytes_get.fetch_add(dst.len() as u64, Ordering::Relaxed);
        self.trace_op(
            EventKind::Get,
            flavor,
            t,
            key.rank,
            dst.len() as u64,
            self.cur_flow.get(),
            t_start,
            t_complete,
        );
        self.fabric.profiler().finish(EventKind::Get, wall);
        Ok(t_complete)
    }

    /// Blocking get.
    pub fn get(&self, key: SegKey, off: usize, dst: &mut [u8]) -> Result<(), FabricError> {
        let t = self.get_raw(key, off, dst, Flavor::Blocking)?;
        self.clock.join(t);
        Ok(())
    }

    /// Explicit-nonblocking get. The destination holds valid data once
    /// [`Endpoint::wait`] returns. Like [`Endpoint::put_nb`], the issue
    /// may be rejected with [`FabricError::Backpressure`] under faults.
    pub fn get_nb(&self, key: SegKey, off: usize, dst: &mut [u8]) -> Result<NbHandle, FabricError> {
        self.check_reject(key.rank)?;
        let t = self.get_raw(key, off, dst, Flavor::Nonblocking)?;
        Ok(NbHandle { t_complete: t })
    }

    /// Implicit-nonblocking get, completed by [`Endpoint::gsync`].
    pub fn get_implicit(&self, key: SegKey, off: usize, dst: &mut [u8]) -> Result<(), FabricError> {
        let t = self.get_raw(key, off, dst, Flavor::Implicit)?;
        self.note_pending(key.rank, t);
        Ok(())
    }

    // ----------------------------------------------------------------- amo

    /// Blocking 8-byte AMO at aligned offset `off`; returns the old value.
    pub fn amo(
        &self,
        key: SegKey,
        off: usize,
        op: AmoOp,
        operand: u64,
        compare: u64,
    ) -> Result<u64, FabricError> {
        let wall = self.fabric.profiler().start();
        let seg = self.bounds(key, off, 8)?;
        let (mc_kind, mc_fetch) = Self::mc_amo(op, true);
        self.mc_seg(key, off, 8, mc_kind, mc_fetch, "amo");
        let t = self.transport_to(key.rank);
        let m = self.fabric.model();
        let extra = self.apply_faults(key.rank, m.amo_latency(t), false);
        let t_start = self.clock.now();
        self.clock.advance(m.inject(t));
        let old = seg.amo(off, op, operand, compare);
        self.clock.advance(m.amo_latency(t) + extra);
        let c = self.fabric.counters();
        c.amos.fetch_add(1, Ordering::Relaxed);
        c.bytes_amo.fetch_add(8, Ordering::Relaxed);
        self.trace_op(
            EventKind::Amo,
            Flavor::Blocking,
            t,
            key.rank,
            8,
            self.cur_flow.get(),
            t_start,
            self.clock.now(),
        );
        self.fabric.profiler().finish(EventKind::Amo, wall);
        Ok(old)
    }

    /// Implicit-nonblocking AMO (result discarded), completed by gsync —
    /// DMAPP's non-fetching AMO flavour. With batching enabled, adjacent
    /// AMOs to the same target coalesce into one injection chain.
    pub fn amo_implicit(
        &self,
        key: SegKey,
        off: usize,
        op: AmoOp,
        operand: u64,
    ) -> Result<(), FabricError> {
        // One announce covers both the batched and unbatched paths (the
        // memory effect is eager either way).
        let (mc_kind, mc_fetch) = Self::mc_amo(op, false);
        self.mc_seg(key, off, 8, mc_kind, mc_fetch, "amo");
        if self.batch.get() {
            return self.amo_batched(key, off, op, operand);
        }
        let wall = self.fabric.profiler().start();
        let seg = self.bounds(key, off, 8)?;
        let t = self.transport_to(key.rank);
        let m = self.fabric.model();
        let extra = self.apply_faults(key.rank, m.amo_latency(t), true);
        let t_start = self.clock.now();
        self.clock.advance(m.inject(t));
        let t_complete = self.clock.now() + m.amo_latency(t) + extra;
        seg.amo(off, op, operand, 0);
        self.note_pending(key.rank, t_complete);
        let c = self.fabric.counters();
        c.amos.fetch_add(1, Ordering::Relaxed);
        c.bytes_amo.fetch_add(8, Ordering::Relaxed);
        self.trace_op(
            EventKind::Amo,
            Flavor::Implicit,
            t,
            key.rank,
            8,
            self.cur_flow.get(),
            t_start,
            t_complete,
        );
        self.fabric.profiler().finish(EventKind::Amo, wall);
        Ok(())
    }

    // ----------------------------------------------- stamped sync variables

    /// AMO on a 16-byte sync variable (`[value][stamp]`): performs the AMO
    /// on the value word, then raises the stamp to this op's completion
    /// time, so a peer observing the new value inherits our causal time.
    /// Returns `(old value, old stamp)`.
    ///
    /// Deliberately exempt from fault injection: this is the fetching
    /// acquire/poll primitive behind CAS retry loops, whose call count is
    /// schedule-dependent — drawing faults here would break per-seed
    /// determinism (see [`crate::faults`]).
    pub fn amo_sync(
        &self,
        key: SegKey,
        off: usize,
        op: AmoOp,
        operand: u64,
        compare: u64,
    ) -> Result<(u64, f64), FabricError> {
        let seg = self.bounds(key, off, 16)?;
        // The stamp word is part of the cell: announce the full 16 bytes
        // so sync AMOs conflict with `read_sync`/`write_sync` spans.
        let (mc_kind, mc_fetch) = Self::mc_amo(op, true);
        self.mc_seg(key, off, 16, mc_kind, mc_fetch, "amo_sync");
        let t = self.transport_to(key.rank);
        let m = self.fabric.model();
        self.clock.advance(m.inject(t));
        let t_complete = self.clock.now() + m.amo_latency(t);
        let old = seg.amo(off, op, operand, compare);
        let old_stamp = seg.word(off + 8).fetch_max(stamp_to_bits(t_complete), Ordering::AcqRel);
        self.clock.join(t_complete);
        let c = self.fabric.counters();
        c.amos.fetch_add(1, Ordering::Relaxed);
        c.bytes_amo.fetch_add(8, Ordering::Relaxed);
        Ok((old, bits_to_stamp(old_stamp)))
    }

    /// Fire-and-forget AMO on a sync variable: like [`Endpoint::amo_sync`]
    /// but non-fetching — the origin pays only the injection overhead and
    /// the AMO completes in the background (tracked for gsync/flush). This
    /// is DMAPP's non-fetching AMO, the primitive behind the paper's cheap
    /// release operations (Punlock = 0.4 µs) and completion notifications
    /// (Pcomplete = 350 ns · k).
    pub fn amo_sync_release(
        &self,
        key: SegKey,
        off: usize,
        op: AmoOp,
        operand: u64,
    ) -> Result<(), FabricError> {
        let seg = self.bounds(key, off, 16)?;
        let (mc_kind, mc_fetch) = Self::mc_amo(op, false);
        self.mc_seg(key, off, 16, mc_kind, mc_fetch, "amo_release");
        let t = self.transport_to(key.rank);
        let m = self.fabric.model();
        let extra = self.apply_faults(key.rank, m.amo_latency(t), true);
        self.clock.advance(m.inject(t));
        let t_complete = self.clock.now() + m.amo_latency(t) + extra;
        seg.amo(off, op, operand, 0);
        seg.word(off + 8).fetch_max(stamp_to_bits(t_complete), Ordering::AcqRel);
        self.note_pending(key.rank, t_complete);
        let c = self.fabric.counters();
        c.amos.fetch_add(1, Ordering::Relaxed);
        c.bytes_amo.fetch_add(8, Ordering::Relaxed);
        Ok(())
    }

    /// Like [`Endpoint::amo_sync_release`], but the notification is
    /// *ordered after* all implicit operations already issued to the same
    /// target (NIC fencing): the published stamp is the max of the AMO's
    /// own completion and the target's pending-operation horizon. The
    /// origin still pays only the injection overhead. This is the
    /// primitive behind notified access (put + notification in one call).
    ///
    /// Fault injection may delay this release's own completion, but the
    /// `max` with the pending horizon (which already includes any delays
    /// injected on the fenced data, and previous ordered releases) keeps
    /// the DMAPP ordered class intact by construction.
    pub fn amo_sync_release_ordered(
        &self,
        key: SegKey,
        off: usize,
        op: AmoOp,
        operand: u64,
    ) -> Result<(), FabricError> {
        let seg = self.bounds(key, off, 16)?;
        let (mc_kind, mc_fetch) = Self::mc_amo(op, false);
        self.mc_seg(key, off, 16, mc_kind, mc_fetch, "amo_release_ord");
        let t = self.transport_to(key.rank);
        let m = self.fabric.model();
        // Ordered-class fencing covers the target's open burst too: retire
        // it so its horizon is part of what the release orders behind.
        self.drain_target(key.rank);
        let extra = self.apply_faults(key.rank, m.amo_latency(t), true);
        self.clock.advance(m.inject(t));
        let pending = self.pending.horizon(key.rank);
        let t_complete = (self.clock.now() + m.amo_latency(t) + extra).max(pending);
        seg.amo(off, op, operand, 0);
        seg.word(off + 8).fetch_max(stamp_to_bits(t_complete), Ordering::AcqRel);
        // Hand the in-scope flow to the signalled rank: a waiter that
        // observes this release picks it up via `take_signal_flow`, joining
        // the consumer's trace span to this producer's flow arrow.
        let flow = self.cur_flow.get();
        if flow != NO_FLOW {
            self.fabric.telemetry().publish_signal_flow(key.rank, flow);
        }
        self.note_pending(key.rank, t_complete);
        let c = self.fabric.counters();
        c.amos.fetch_add(1, Ordering::Relaxed);
        c.bytes_amo.fetch_add(8, Ordering::Relaxed);
        Ok(())
    }

    /// Read a 16-byte sync variable; joins the clock with `stamp +
    /// latency` so waiting loops accrue honest time. Returns the value.
    pub fn read_sync(&self, key: SegKey, off: usize) -> Result<u64, FabricError> {
        let seg = self.bounds(key, off, 16)?;
        self.mc_seg(key, off, 16, AccessKind::Get, false, "read_sync");
        let t = self.transport_to(key.rank);
        let m = self.fabric.model();
        let local = key.rank == self.rank;
        let lat = if local { 0.0 } else { m.get_latency(t, 8) };
        if !local {
            self.clock.advance(m.inject(t));
            self.fabric.counters().gets.fetch_add(1, Ordering::Relaxed);
        }
        let v = seg.word(off).load(Ordering::Acquire);
        let s = bits_to_stamp(seg.word(off + 8).load(Ordering::Acquire));
        self.clock.join(s + lat);
        self.clock.join(self.clock.now() + lat);
        Ok(v)
    }

    /// Write a 16-byte sync variable (value + stamp = our completion time).
    pub fn write_sync(&self, key: SegKey, off: usize, value: u64) -> Result<(), FabricError> {
        let seg = self.bounds(key, off, 16)?;
        self.mc_seg(key, off, 16, AccessKind::Put, false, "write_sync");
        let t = self.transport_to(key.rank);
        let m = self.fabric.model();
        let extra = self.apply_faults(key.rank, m.put_latency(t, 8), true);
        self.clock.advance(m.inject(t));
        let t_complete = self.clock.now() + m.put_latency(t, 8) + extra;
        seg.word(off).store(value, Ordering::Release);
        seg.word(off + 8).fetch_max(stamp_to_bits(t_complete), Ordering::AcqRel);
        self.note_pending(key.rank, t_complete);
        self.fabric.counters().puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    // ------------------------------------------------------ notified access

    /// Issue an ordered completion notification toward `target`: a record
    /// `(tag, source=this rank, bytes)` appended to the target rank's
    /// notification ring ([`crate::notify`]) once everything already
    /// issued to that target — including the open injection burst, which
    /// is drained first so the notification orders after the burst's
    /// completion — has retired. The notification itself rides a
    /// non-fetching AMO (same cost shape as
    /// [`Endpoint::amo_sync_release_ordered`]): the origin pays one
    /// injection overhead and the record's stamp is
    /// `max(own completion, pending horizon toward target)`, keeping the
    /// DMAPP ordered class intact under fault-injected delays.
    ///
    /// A full ring is modelled as injection-queue backpressure: the origin
    /// charges one stall (the armed [`crate::FaultPlan`]'s `bp_ns`, or
    /// [`Endpoint::NOTIFY_BP_NS`] when no plan is armed), then retries a
    /// bounded number of times while the consumer drains; if the ring
    /// never drains the append surfaces [`FabricError::Backpressure`].
    /// Fault draws happen once per append, never inside the retry loop,
    /// preserving the per-seed determinism contract of [`crate::faults`].
    pub fn notify_append(&self, target: u32, tag: u32, bytes: u64) -> Result<(), FabricError> {
        let wall = self.fabric.profiler().start();
        let t = self.transport_to(target);
        let m = self.fabric.model();
        // Ordered-class fencing: the notification trails the open burst.
        self.drain_target(target);
        let extra = self.apply_faults(target, m.amo_latency(t), true);
        let t_start = self.clock.now();
        self.clock.advance(m.inject(t));
        let pending = self.pending.horizon(target);
        let mut t_complete = (self.clock.now() + m.amo_latency(t) + extra).max(pending);
        let q = self.fabric.notify().queue(target);
        let flow = self.cur_flow.get();
        let mut rec = NotifyRecord { tag, source: self.rank, bytes, stamp: t_complete, flow };
        self.mc_op(McObj::Ring(target), 0, 0, AccessKind::Put, false, "notify-push");
        if !q.try_push(rec) {
            if self.mc_armed() {
                // Under the model checker a full ring is a legal blocking
                // point, not backpressure to fault-charge: park until the
                // consumer drains, re-announcing the push each round so the
                // gate keeps scheduling authority over the retry.
                loop {
                    let fab = self.fabric.clone();
                    self.mc_poll(McObj::Ring(target), "notify-space", move || {
                        let q = fab.notify().queue(target);
                        q.len() < q.capacity()
                    });
                    self.mc_op(McObj::Ring(target), 0, 0, AccessKind::Put, false, "notify-push");
                    if q.try_push(rec) {
                        break;
                    }
                }
                self.note_pending(target, t_complete);
                self.fabric.counters().notify_posts.fetch_add(1, Ordering::Relaxed);
                self.fabric.profiler().finish(EventKind::NotifyPost, wall);
                return Ok(());
            }
            // Overflow → backpressure. Charge the stall once (no extra RNG
            // draws: the magnitude comes straight from the armed plan), then
            // retry while the consumer drains.
            let c = self.fabric.counters();
            c.notify_overflows.fetch_add(1, Ordering::Relaxed);
            let plan = self.fabric.faults().plan();
            let stall = if plan.bp_ns > 0.0 { plan.bp_ns } else { Self::NOTIFY_BP_NS };
            let t0 = self.clock.now();
            self.clock.advance(stall);
            self.trace_fault(EventKind::FaultBackpressure, target, t0, self.clock.now());
            // The stalled append re-issues after the stall.
            t_complete = (self.clock.now() + m.amo_latency(t)).max(t_complete);
            rec.stamp = t_complete;
            let mut pushed = false;
            for _ in 0..Self::NOTIFY_RETRY_LIMIT {
                if q.try_push(rec) {
                    pushed = true;
                    break;
                }
                std::thread::yield_now();
            }
            if !pushed {
                // The retry budget is exhausted — the peer never drained.
                // This is the fatal-backpressure path: dump the flight
                // recorder so the last window of events survives the abort
                // most callers turn this error into.
                self.flight_dump("notify ring backpressure retry budget exhausted");
                return Err(FabricError::Backpressure { retry_after_ns: stall as u64 });
            }
        }
        self.note_pending(target, t_complete);
        self.fabric.counters().notify_posts.fetch_add(1, Ordering::Relaxed);
        self.trace_op(
            EventKind::NotifyPost,
            Flavor::Implicit,
            t,
            target,
            bytes,
            flow,
            t_start,
            t_complete,
        );
        self.fabric.profiler().finish(EventKind::NotifyPost, wall);
        Ok(())
    }

    /// Issue stall charged per overflowed [`Endpoint::notify_append`] when
    /// no fault plan is armed (an armed plan's `bp_ns` takes precedence).
    pub const NOTIFY_BP_NS: f64 = 2_000.0;

    /// Bounded retry attempts after an overflowed append before the
    /// backpressure error surfaces to the caller.
    pub const NOTIFY_RETRY_LIMIT: u32 = 100_000;

    /// Notified put: the data moves like [`Endpoint::put_implicit`] (so it
    /// composes with issue-side batching), then an ordered notification
    /// carrying `(tag, bytes)` is appended to the target rank's ring. A
    /// consumer that matches the notification observes the data: the
    /// record's stamp trails the data's completion horizon.
    pub fn put_notified(
        &self,
        key: SegKey,
        off: usize,
        src: &[u8],
        tag: u32,
    ) -> Result<(), FabricError> {
        // One causal flow covers the data put and its notification: the
        // consumer's matching wait joins this flow in the trace.
        let prev = self.flow_open();
        let r = self
            .put_implicit(key, off, src)
            .and_then(|()| self.notify_append(key.rank, tag, src.len() as u64));
        self.flow_close(prev);
        r
    }

    /// Notified get: fetch like [`Endpoint::get_implicit`], then notify the
    /// *target* (the data's owner) that the read has retired — the
    /// buffer-reuse signal of notified access (the owner may overwrite once
    /// it matches the notification).
    pub fn get_notified(
        &self,
        key: SegKey,
        off: usize,
        dst: &mut [u8],
        tag: u32,
    ) -> Result<(), FabricError> {
        let prev = self.flow_open();
        let len = dst.len() as u64;
        let r =
            self.get_implicit(key, off, dst).and_then(|()| self.notify_append(key.rank, tag, len));
        self.flow_close(prev);
        r
    }

    /// Notified non-fetching AMO: apply like [`Endpoint::amo_implicit`],
    /// then notify the target. The credit-return primitive of
    /// producer-consumer channels.
    pub fn amo_notified(
        &self,
        key: SegKey,
        off: usize,
        op: AmoOp,
        operand: u64,
        tag: u32,
    ) -> Result<(), FabricError> {
        let prev = self.flow_open();
        let r = self
            .amo_implicit(key, off, op, operand)
            .and_then(|()| self.notify_append(key.rank, tag, 8));
        self.flow_close(prev);
        r
    }

    /// Pop the oldest notification destined for this rank, if any. Local
    /// polling is free in virtual time (the ring lives on this rank, like
    /// `read_sync` on a local segment); a popped record joins the clock
    /// with its stamp, so consuming a notification implies the notified
    /// operation's data is visible. Matching (tag/source wildcards,
    /// out-of-order stashing) lives in the window layer.
    pub fn notify_pop(&self) -> Option<NotifyRecord> {
        let rec = self.notify_poll()?;
        self.notify_join(&rec);
        Some(rec)
    }

    /// Pop without joining the clock. The window-layer matcher stashes
    /// records that don't match the current wait; only the *matched*
    /// record's stamp may touch the consumer's clock, otherwise the clock
    /// would depend on how many unrelated records happened to be queued
    /// ahead of the match — a real-schedule artefact the virtual-time
    /// model must not observe. Callers pair this with
    /// [`Endpoint::notify_join`] on the record they actually consume.
    pub fn notify_poll(&self) -> Option<NotifyRecord> {
        // Announce even when the ring turns out to be empty: observing
        // emptiness is itself order-sensitive (it decides a retry).
        self.mc_op(McObj::Ring(self.rank), 0, 0, AccessKind::Get, false, "notify-poll");
        let rec = self.fabric.notify().queue(self.rank).try_pop()?;
        self.fabric.counters().notify_consumed.fetch_add(1, Ordering::Relaxed);
        Some(rec)
    }

    /// Join the clock with a matched record's stamp — the consume-side
    /// half of [`Endpoint::notify_poll`]: after the join, everything the
    /// notified operation wrote is visible at this rank's virtual time.
    pub fn notify_join(&self, rec: &NotifyRecord) {
        self.clock.join(rec.stamp);
    }

    /// Records currently queued for this rank (approximate under
    /// concurrent producers).
    pub fn notify_backlog(&self) -> usize {
        self.fabric.notify().queue(self.rank).len()
    }

    /// Discard every notification still queued for this rank (window
    /// free): each dropped record is counted and traced. Returns how many
    /// were dropped.
    pub fn notify_drop_all(&self) -> u64 {
        self.mc_op(McObj::Ring(self.rank), 0, 0, AccessKind::Put, false, "notify-drain");
        let q = self.fabric.notify().queue(self.rank);
        let mut n = 0u64;
        while let Some(rec) = q.try_pop() {
            n += 1;
            let t0 = self.clock.now();
            // The drop carries the record's flow so an unconsumed
            // notification still terminates its arrow (visibly as a drop).
            self.trace_op(
                EventKind::NotifyDrop,
                Flavor::NotApplicable,
                self.transport_to(rec.source),
                rec.source,
                rec.bytes,
                rec.flow,
                t0,
                t0,
            );
        }
        if n > 0 {
            self.fabric.counters().notify_dropped.fetch_add(n, Ordering::Relaxed);
        }
        n
    }

    // ---------------------------------------------------------- completion

    /// Wait for one explicit-nonblocking operation.
    pub fn wait(&self, h: NbHandle) {
        self.clock.join(h.t_complete);
    }

    /// Bulk-complete all implicit-nonblocking operations (DMAPP `gsync`).
    /// Under an armed fault plan the drain itself may retire late (the
    /// NIC's completion queue lags): the extra delay is charged after the
    /// pending horizon is joined.
    pub fn gsync(&self) {
        let wall = self.fabric.profiler().start();
        let t_start = self.clock.now();
        self.drain_all();
        self.clock.join(self.pending.global());
        let extra = self.apply_faults(NO_TARGET, 0.0, true);
        if extra > 0.0 {
            self.clock.advance(extra);
        }
        self.fabric.counters().gsyncs.fetch_add(1, Ordering::Relaxed);
        self.trace_sync(EventKind::Gsync, NO_TARGET, t_start);
        self.fabric.profiler().finish(EventKind::Gsync, wall);
    }

    /// The completion horizon of implicit operations already issued to
    /// `target` (what a flush would wait for) — used by request-based
    /// wrappers to build completion handles. Retires the target's open
    /// burst first so the horizon covers it. Conservative under striping:
    /// may include a stripe-mate's later completion.
    pub fn pending_for(&self, target: u32) -> f64 {
        self.drain_target(target);
        self.pending.horizon(target)
    }

    /// Complete all implicit operations targeted at `target` (per-target
    /// remote completion, the substrate of `MPI_Win_flush(target)`).
    /// Retires the target's open burst, then joins its striped horizon.
    pub fn flush_target(&self, target: u32) {
        let wall = self.fabric.profiler().start();
        let t_start = self.clock.now();
        self.drain_target(target);
        self.clock.join(self.pending.horizon(target));
        self.fabric.counters().flushes.fetch_add(1, Ordering::Relaxed);
        self.trace_sync(EventKind::Flush, target, t_start);
        self.fabric.profiler().finish(EventKind::Flush, wall);
    }

    /// Local memory fence (x86 `mfence` analogue, charged per the model).
    pub fn mfence(&self) {
        std::sync::atomic::fence(Ordering::SeqCst);
        self.clock.advance(self.fabric.model().mfence_ns);
    }

    // ------------------------------------------------------ flight recorder

    /// Dump this rank's flight-recorder window and an atomics-only metrics
    /// summary to stderr — the black-box readout for fatal paths (panics,
    /// racecheck aborts, exhausted backpressure retries). Reads only this
    /// rank's own ring (single-writer, so its own events are coherent
    /// mid-run) plus atomic counters; safe to call while other ranks are
    /// still running. No-op unless the flight recorder is armed.
    #[cold]
    pub fn flight_dump(&self, why: &str) {
        let tel = self.fabric.telemetry();
        if !tel.flight_enabled() {
            return;
        }
        let evs = tel.flight_events(self.rank);
        let mut out = format!(
            "== fompi-scope flight recorder: rank {} ({}): last {} events ==\n",
            self.rank,
            why,
            evs.len()
        );
        for ev in &evs {
            out.push_str(&format!(
                "  [{:>14.1}..{:>14.1}] {:<12} -> {:>3} bytes={} win={} flow={:#x}\n",
                ev.t_start,
                ev.t_end,
                ev.kind.name(),
                if ev.target == NO_TARGET { -1i64 } else { ev.target as i64 },
                ev.bytes,
                ev.win,
                ev.flow,
            ));
        }
        out.push_str(&crate::metrics::panic_summary(&self.fabric));
        eprint!("{out}");
    }

    // ------------------------------------------------------- model checking
    //
    // Announce points for the interleaving model checker ([`crate::mc`]).
    // The unarmed cost is one relaxed load per site — the faults/racecheck
    // bar. Announcements cover every shared-state touch the endpoint
    // performs: segment data movement, stamped sync variables, and
    // notification-ring traffic. Rank-local state (clock, open bursts,
    // striped horizons, counters) is never announced: other ranks cannot
    // observe it, so reordering it cannot change any rank-visible value.

    /// Is a model-checker gate armed on the fabric?
    #[inline]
    pub fn mc_armed(&self) -> bool {
        self.fabric.mc_armed()
    }

    /// Announce one operation on an explicit conflict object and park
    /// until the gate schedules this rank; the caller must then perform
    /// exactly the announced operation. No-op unless armed.
    #[inline]
    pub fn mc_op(
        &self,
        obj: McObj,
        lo: usize,
        hi: usize,
        kind: AccessKind,
        fetch: bool,
        label: &'static str,
    ) {
        if self.fabric.mc_armed() {
            self.mc_op_slow(obj, lo, hi, kind, fetch, label);
        }
    }

    #[cold]
    fn mc_op_slow(
        &self,
        obj: McObj,
        lo: usize,
        hi: usize,
        kind: AccessKind,
        fetch: bool,
        label: &'static str,
    ) {
        if let Some(g) = self.fabric.mc_gate() {
            g.op(self.rank, McOp { obj, lo, hi, kind, fetch, label });
        }
    }

    /// Announce a segment access `[off, off + len)` by registration key.
    #[inline]
    fn mc_seg(
        &self,
        key: SegKey,
        off: usize,
        len: usize,
        kind: AccessKind,
        fetch: bool,
        label: &'static str,
    ) {
        if self.fabric.mc_armed() {
            self.mc_op_slow(
                McObj::Seg { owner: key.rank, id: key.id },
                off,
                off + len,
                kind,
                fetch,
                label,
            );
        }
    }

    /// Announce vocabulary for an AMO: the reduction tag plus whether the
    /// op must be treated as order-observing even when non-fetching.
    /// Same-op `Add`/`And`/`Or`/`Xor` commute; `Swap` and `Cas` never
    /// commute with themselves, so they always carry the fetch bit; a
    /// pure `Fetch` is the atomic-read carve-out.
    fn mc_amo(op: AmoOp, fetch: bool) -> (AccessKind, bool) {
        match op {
            AmoOp::Add => (AccessKind::Acc(0), fetch),
            AmoOp::And => (AccessKind::Acc(1), fetch),
            AmoOp::Or => (AccessKind::Acc(2), fetch),
            AmoOp::Xor => (AccessKind::Acc(3), fetch),
            AmoOp::Swap => (AccessKind::Acc(4), true),
            AmoOp::Cas => (AccessKind::Acc(5), true),
            AmoOp::Fetch => (AccessKind::Acc(crate::shadow::ACC_NOOP), fetch),
        }
    }

    /// Gate-mediated blocking wait: park until `pred` holds *and* the
    /// gate schedules this rank. Returns `false` when no gate is armed —
    /// the caller falls back to its normal spin/yield loop. A wake is a
    /// read of `obj` in the conflict relation.
    pub fn mc_poll<F>(&self, obj: McObj, label: &'static str, pred: F) -> bool
    where
        F: Fn() -> bool + Send + Sync + 'static,
    {
        if !self.fabric.mc_armed() {
            return false;
        }
        match self.fabric.mc_gate() {
            Some(g) => {
                g.poll(self.rank, obj, label, Box::new(pred));
                true
            }
            None => false,
        }
    }

    /// Park until this rank's own notification ring is non-empty — the
    /// gate-mediated form of every "spin until a notification arrives"
    /// loop. Returns `false` when no gate is armed.
    pub fn mc_poll_my_ring(&self, label: &'static str) -> bool {
        if !self.fabric.mc_armed() {
            return false;
        }
        let fab = self.fabric.clone();
        let rank = self.rank;
        self.mc_poll(McObj::Ring(rank), label, move || !fab.notify().queue(rank).is_empty())
    }

    /// Park until the 8-byte sync word at `key`+`off` satisfies `pred` —
    /// the gate-mediated form of a CAS-retry loop on a remote lock word.
    /// A failed sync CAS means another origin holds the word, so
    /// re-arming the attempt is only useful once the word changes; under
    /// the checker each free retry would be an always-enabled step and
    /// exploration of the spin would never terminate. Returns `false`
    /// when no gate is armed — the caller falls back to its backoff spin.
    pub fn mc_poll_word(
        &self,
        key: SegKey,
        off: usize,
        label: &'static str,
        pred: fn(u64) -> bool,
    ) -> bool {
        if !self.fabric.mc_armed() {
            return false;
        }
        let Ok(seg) = self.bounds(key, off, 8) else {
            return false;
        };
        self.mc_poll(McObj::Seg { owner: key.rank, id: key.id }, label, move || {
            pred(seg.word(off).load(Ordering::Acquire))
        })
    }

    /// Enter a job-wide collective through the gate; `Some(is_leader)`
    /// when armed, `None` otherwise (caller runs its real barrier).
    pub fn mc_collective(&self, label: &'static str) -> Option<bool> {
        if !self.fabric.mc_armed() {
            return None;
        }
        self.fabric.mc_gate().map(|g| g.collective(self.rank, label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::segment::Segment;

    fn setup() -> (Arc<Fabric>, Endpoint, Endpoint, SegKey) {
        // Ranks 0 and 1 on different nodes → DMAPP path.
        let f = Fabric::new(2, 1, CostModel::default());
        let ep0 = Endpoint::new(f.clone(), 0);
        let ep1 = Endpoint::new(f.clone(), 1);
        let seg = Segment::new(4096);
        let key = f.register(1, seg);
        (f, ep0, ep1, key)
    }

    #[test]
    fn blocking_put_costs_model_latency() {
        let (f, ep0, _ep1, key) = setup();
        let m = f.model().clone();
        ep0.put(key, 0, &[1u8; 8]).unwrap();
        let expect = m.inject(Transport::Dmapp) + m.put_latency(Transport::Dmapp, 8);
        assert!((ep0.clock().now() - expect).abs() < 1e-9);
        let mut out = [0u8; 8];
        ep0.get(key, 0, &mut out).unwrap();
        assert_eq!(out, [1u8; 8]);
    }

    #[test]
    fn implicit_ops_cost_only_injection_until_gsync() {
        let (f, ep0, _ep1, key) = setup();
        let m = f.model().clone();
        for i in 0..10 {
            ep0.put_implicit(key, i * 8, &[i as u8; 8]).unwrap();
        }
        let inject_only = 10.0 * m.inject(Transport::Dmapp);
        assert!((ep0.clock().now() - inject_only).abs() < 1e-9);
        ep0.gsync();
        // After gsync we must have paid at least one full latency.
        assert!(ep0.clock().now() >= inject_only + m.put_latency(Transport::Dmapp, 8));
    }

    #[test]
    fn nb_handle_waits() {
        let (_f, ep0, _ep1, key) = setup();
        let h = ep0.put_nb(key, 0, &[9u8; 16]).unwrap();
        let before = ep0.clock().now();
        assert!(h.t_complete > before);
        ep0.wait(h);
        assert_eq!(ep0.clock().now(), h.t_complete);
    }

    #[test]
    fn amo_roundtrip_and_cost() {
        let (f, ep0, _ep1, key) = setup();
        let old = ep0.amo(key, 0, AmoOp::Add, 42, 0).unwrap();
        assert_eq!(old, 0);
        let old = ep0.amo(key, 0, AmoOp::Add, 1, 0).unwrap();
        assert_eq!(old, 42);
        let m = f.model();
        let per = m.inject(Transport::Dmapp) + m.amo_latency(Transport::Dmapp);
        assert!((ep0.clock().now() - 2.0 * per).abs() < 1e-9);
    }

    #[test]
    fn sync_var_carries_time() {
        let (_f, ep0, ep1, key) = setup();
        // Rank 0 does expensive work then signals.
        ep0.charge(1_000_000.0);
        ep0.amo_sync(key, 0, AmoOp::Add, 1, 0).unwrap();
        // Rank 1 reads the flag; its clock must jump past rank 0's signal.
        let v = ep1.read_sync(key, 0).unwrap();
        assert_eq!(v, 1);
        assert!(ep1.clock().now() > 1_000_000.0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (_f, ep0, _ep1, key) = setup();
        assert!(matches!(ep0.put(key, 4090, &[0u8; 16]), Err(FabricError::OutOfBounds { .. })));
    }

    #[test]
    fn per_target_flush() {
        let f = Fabric::new(3, 1, CostModel::default());
        let ep0 = Endpoint::new(f.clone(), 0);
        let k1 = f.register(1, Segment::new(64));
        let k2 = f.register(2, Segment::new(8192));
        ep0.put_implicit(k1, 0, &[1u8; 8]).unwrap();
        ep0.put_implicit(k2, 0, &[2u8; 4096]).unwrap();
        let t_before = ep0.clock().now();
        ep0.flush_target(1); // cheap target only
        let after_1 = ep0.clock().now();
        ep0.flush_target(2); // expensive 4 KiB put
        let after_2 = ep0.clock().now();
        assert!(after_1 >= t_before);
        assert!(after_2 > after_1);
    }

    #[test]
    fn ordered_release_trails_pending_data() {
        let (f, ep0, ep1, key) = setup();
        let m = f.model().clone();
        // A large implicit put followed by an ordered notification: the
        // notification stamp must not be visible before the data horizon.
        ep0.put_implicit(key, 16, &[7u8; 2048]).unwrap();
        let t_data = ep0.clock().now() + m.put_latency(Transport::Dmapp, 2048);
        ep0.amo_sync_release_ordered(key, 0, AmoOp::Add, 1).unwrap();
        // The reader joins the stamp: its clock lands at/after the data.
        let v = ep1.read_sync(key, 0).unwrap();
        assert_eq!(v, 1);
        assert!(
            ep1.clock().now() >= t_data,
            "notification visible before the data it orders: {} < {}",
            ep1.clock().now(),
            t_data
        );
        // The origin itself did not block.
        assert!(ep0.clock().now() < t_data);
    }

    #[test]
    fn faults_perturb_latency_deterministically() {
        use crate::faults::FaultPlan;
        let mk = || {
            let f =
                Fabric::with_config(2, 1, CostModel::default(), None, Some(FaultPlan::heavy(77)));
            let ep = Endpoint::new(f.clone(), 0);
            let key = f.register(1, Segment::new(4096));
            (f, ep, key)
        };
        let (fa, ea, ka) = mk();
        let (fb, eb, kb) = mk();
        for i in 0..50 {
            ea.put(ka, 0, &[i as u8; 64]).unwrap();
            eb.put(kb, 0, &[i as u8; 64]).unwrap();
            assert_eq!(ea.clock().now().to_bits(), eb.clock().now().to_bits());
        }
        assert!(fa.faults().total_injected() > 0, "heavy plan must inject");
        assert_eq!(fa.faults().total_injected(), fb.faults().total_injected());
        // Jitter must actually cost time relative to the clean model.
        let f0 = Fabric::new(2, 1, CostModel::default());
        let e0 = Endpoint::new(f0.clone(), 0);
        let k0 = f0.register(1, Segment::new(4096));
        for i in 0..50 {
            e0.put(k0, 0, &[i as u8; 64]).unwrap();
        }
        assert!(ea.clock().now() > e0.clock().now());
    }

    #[test]
    fn rejected_nb_issue_moves_no_data() {
        use crate::faults::FaultPlan;
        let plan = FaultPlan { bp_reject_prob: 1.0, ..FaultPlan::heavy(5) };
        let f = Fabric::with_config(2, 1, CostModel::default(), None, Some(plan));
        let ep = Endpoint::new(f.clone(), 0);
        let key = f.register(1, Segment::new(64));
        match ep.put_nb(key, 0, &[9u8; 8]) {
            Err(FabricError::Backpressure { retry_after_ns }) => assert!(retry_after_ns > 0),
            other => panic!("expected backpressure, got {other:?}"),
        }
        // Nothing was issued: the target bytes are untouched.
        let mut buf = [1u8; 8];
        ep.get(key, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn ordered_release_stays_ordered_under_faults() {
        use crate::faults::FaultPlan;
        let f = Fabric::with_config(2, 1, CostModel::default(), None, Some(FaultPlan::heavy(31)));
        let ep0 = Endpoint::new(f.clone(), 0);
        let ep1 = Endpoint::new(f.clone(), 1);
        let key = f.register(1, Segment::new(4096));
        for round in 0..20u64 {
            ep0.put_implicit(key, 16, &[7u8; 2048]).unwrap();
            let horizon = ep0.pending_for(1);
            ep0.amo_sync_release_ordered(key, 0, AmoOp::Add, 1).unwrap();
            let v = ep1.read_sync(key, 0).unwrap();
            assert_eq!(v, round + 1);
            assert!(
                ep1.clock().now() >= horizon,
                "delayed release overtook its fenced data: {} < {horizon}",
                ep1.clock().now()
            );
        }
    }

    #[test]
    fn batching_amortizes_injection_and_improves_horizon() {
        let m = CostModel::default();
        let run = |batch: bool| {
            let f = Fabric::new(2, 1, CostModel::default());
            let ep = Endpoint::new(f.clone(), 0);
            ep.set_batching(batch);
            let key = f.register(1, Segment::new(4096));
            for i in 0..16 {
                ep.put_implicit(key, i * 8, &[i as u8 + 1; 8]).unwrap();
            }
            ep.gsync();
            (ep.clock().now(), f, ep, key)
        };
        let (batched, fb, epb, keyb) = run(true);
        let (unbatched, ..) = run(false);
        assert!(batched < unbatched, "batched {batched} >= unbatched {unbatched}");
        // 16 contiguous 8-byte puts: one burst — o + 15·g issue cost and a
        // single 128-byte wire message instead of 16 injections.
        let expect = m.inject(Transport::Dmapp)
            + 15.0 * m.gap(Transport::Dmapp)
            + m.put_latency(Transport::Dmapp, 128);
        assert!((batched - expect).abs() < 1e-9, "got {batched}, expect {expect}");
        let c = fb.counters().snapshot();
        assert_eq!((c.puts, c.batched_ops, c.batch_flushes, c.batch_splits), (16, 16, 1, 0));
        // The data all landed, in order.
        for i in 0..16u8 {
            let mut buf = [0u8; 8];
            epb.get(keyb, i as usize * 8, &mut buf).unwrap();
            assert_eq!(buf, [i + 1; 8]);
        }
    }

    #[test]
    fn burst_splits_exactly_at_proto_boundary() {
        let (f, ep0, _ep1, key) = setup();
        ep0.set_batching(true);
        // 8 × 512 B contiguous = 4096 B total: the member that would reach
        // the protocol-change size exactly must open a fresh burst instead
        // (bursts never enter the rendezvous protocol).
        for i in 0..8 {
            ep0.put_implicit(key, i * 512, &[i as u8 + 1; 512]).unwrap();
        }
        let c = f.counters().snapshot();
        assert_eq!((c.batch_flushes, c.batch_splits), (1, 1));
        assert_eq!(ep0.open_bursts(), 1, "the split's tail burst stays open");
        ep0.gsync();
        assert_eq!(ep0.open_bursts(), 0);
        assert_eq!(f.counters().snapshot().batch_flushes, 2);
        let mut buf = [0u8; 512];
        ep0.get(key, 7 * 512, &mut buf).unwrap();
        assert_eq!(buf, [8u8; 512]);
    }

    #[test]
    fn large_puts_bypass_batching() {
        let f = Fabric::new(2, 1, CostModel::default());
        let ep = Endpoint::new(f.clone(), 0);
        ep.set_batching(true);
        let key = f.register(1, Segment::new(8192));
        ep.put_implicit(key, 0, &[3u8; 4096]).unwrap();
        assert_eq!(ep.open_bursts(), 0, "protocol-change-sized put is not batched");
        assert_eq!(f.counters().snapshot().batched_ops, 0);
        assert!(ep.pending_for(1) > 0.0);
    }

    #[test]
    fn interleaved_put_amo_same_offset_stays_ordered() {
        let (f, ep0, ep1, key) = setup();
        ep0.set_batching(true);
        // Same 8-byte word, alternating kinds: memory effects apply
        // eagerly in program order, and every kind switch retires the
        // open burst, so nothing reorders within the ordered class.
        ep0.put_implicit(key, 0, &5u64.to_le_bytes()).unwrap();
        ep0.amo_implicit(key, 0, AmoOp::Add, 3).unwrap();
        ep0.put_implicit(key, 0, &10u64.to_le_bytes()).unwrap();
        ep0.amo_implicit(key, 0, AmoOp::Add, 1).unwrap();
        assert_eq!(f.counters().snapshot().batch_splits, 3);
        let horizon = ep0.pending_for(1); // drains the open AMO burst
        assert!(horizon > 0.0);
        ep0.amo_sync_release_ordered(key, 16, AmoOp::Add, 1).unwrap();
        let v = ep1.read_sync(key, 16).unwrap();
        assert_eq!(v, 1);
        assert!(
            ep1.clock().now() >= horizon,
            "ordered release overtook batched data: {} < {horizon}",
            ep1.clock().now()
        );
        let mut buf = [0u8; 8];
        ep0.get(key, 0, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 11, "program order preserved");
    }

    #[test]
    fn flush_during_faults_drains_and_stays_deterministic() {
        use crate::faults::FaultPlan;
        let run = || {
            // Delay + backpressure heavy: the PR 2 plans the soak uses.
            let plan = FaultPlan { delay_prob: 0.5, bp_prob: 0.3, ..FaultPlan::heavy(123) };
            let f = Fabric::with_config(2, 1, CostModel::default(), None, Some(plan));
            let ep = Endpoint::new(f.clone(), 0);
            ep.set_batching(true);
            let key = f.register(1, Segment::new(8192));
            for round in 0..10usize {
                for i in 0..8 {
                    ep.put_implicit(key, round * 64 + i * 8, &[i as u8; 8]).unwrap();
                }
                ep.flush_target(1);
                assert_eq!(ep.open_bursts(), 0, "flush must drain open bursts");
            }
            ep.gsync();
            (ep.clock().now(), f.faults().total_injected())
        };
        let (ta, ia) = run();
        let (tb, ib) = run();
        assert_eq!(ta.to_bits(), tb.to_bits(), "batched fault runs must be bit-deterministic");
        assert_eq!(ia, ib);
        assert!(ia > 0, "the armed plan must inject");
    }

    #[test]
    fn disabling_batching_drains_open_bursts() {
        let (f, ep0, _ep1, key) = setup();
        ep0.set_batching(true);
        ep0.put_implicit(key, 0, &[1u8; 8]).unwrap();
        assert_eq!(ep0.open_bursts(), 1);
        ep0.set_batching(false);
        assert_eq!(ep0.open_bursts(), 0);
        assert!(ep0.pending_for(1) > 0.0, "drained burst left its horizon behind");
        let _ = f;
    }

    #[test]
    fn notified_put_delivers_record_after_its_data() {
        let (f, ep0, ep1, key) = setup();
        let m = f.model().clone();
        ep0.put_notified(key, 64, &[9u8; 2048], 77).unwrap();
        let t_data = m.inject(Transport::Dmapp) + m.put_latency(Transport::Dmapp, 2048);
        let rec = ep1.notify_pop().expect("notification queued");
        assert_eq!((rec.tag, rec.source, rec.bytes), (77, 0, 2048));
        assert!(
            rec.stamp >= t_data,
            "notification stamp {} precedes its data horizon {t_data}",
            rec.stamp
        );
        // Consuming the notification pulls the consumer past the data.
        assert!(ep1.clock().now() >= t_data);
        let mut buf = [0u8; 2048];
        ep1.get(key, 64, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 2048]);
        let c = f.counters().snapshot();
        assert_eq!((c.notify_posts, c.notify_consumed, c.notify_overflows), (1, 1, 0));
    }

    #[test]
    fn notified_op_drains_open_burst_first() {
        let (f, ep0, ep1, key) = setup();
        ep0.set_batching(true);
        // Contiguous small puts open a burst; the notified put joins it,
        // then the notification drains it so the record trails the whole
        // burst's completion.
        for i in 0..8 {
            ep0.put_implicit(key, i * 8, &[i as u8 + 1; 8]).unwrap();
        }
        assert_eq!(ep0.open_bursts(), 1);
        ep0.put_notified(key, 64, &[42u8; 8], 5).unwrap();
        assert_eq!(ep0.open_bursts(), 0, "notification must retire the burst");
        let horizon = ep0.pending_for(1);
        let rec = ep1.notify_pop().expect("notification queued");
        assert!(
            rec.stamp >= horizon || ep1.clock().now() >= horizon,
            "notification reordered ahead of its burst"
        );
        assert!(f.counters().snapshot().batch_flushes >= 1);
    }

    #[test]
    fn notify_overflow_accounts_backpressure_and_errors() {
        let f = Fabric::new(2, 1, CostModel::default());
        f.set_notify_depth(2);
        let ep0 = Endpoint::new(f.clone(), 0);
        let _key = f.register(1, Segment::new(64));
        ep0.notify_append(1, 1, 8).unwrap();
        ep0.notify_append(1, 2, 8).unwrap();
        let before = ep0.clock().now();
        // Nobody consumes: the third append stalls, retries, then errors.
        match ep0.notify_append(1, 3, 8) {
            Err(FabricError::Backpressure { retry_after_ns }) => assert!(retry_after_ns > 0),
            other => panic!("expected backpressure, got {other:?}"),
        }
        let c = f.counters().snapshot();
        assert_eq!(c.notify_overflows, 1);
        assert_eq!(c.notify_posts, 2, "the failed append must not count as posted");
        // The stall was charged to the producer's clock exactly once.
        let m = f.model();
        let stall_floor = m.inject(Transport::Dmapp) + Endpoint::NOTIFY_BP_NS;
        assert!(ep0.clock().now() >= before + stall_floor);
    }

    #[test]
    fn notify_overflow_recovers_when_consumer_drains() {
        let f = Fabric::new(2, 1, CostModel::default());
        f.set_notify_depth(2);
        let ep0 = Endpoint::new(f.clone(), 0);
        let ep1 = Endpoint::new(f.clone(), 1);
        ep0.notify_append(1, 1, 0).unwrap();
        ep0.notify_append(1, 2, 0).unwrap();
        // Drain one slot from the consumer side, then the stalled append
        // succeeds on retry (single-threaded here: drain first).
        assert_eq!(ep1.notify_pop().unwrap().tag, 1);
        ep0.notify_append(1, 3, 0).unwrap();
        assert_eq!(ep1.notify_pop().unwrap().tag, 2);
        assert_eq!(ep1.notify_pop().unwrap().tag, 3);
        assert_eq!(f.counters().snapshot().notify_posts, 3);
    }

    #[test]
    fn notified_ops_stay_deterministic_under_faults() {
        use crate::faults::FaultPlan;
        let run = || {
            let plan = FaultPlan { delay_prob: 0.5, bp_prob: 0.3, ..FaultPlan::heavy(99) };
            let f = Fabric::with_config(2, 1, CostModel::default(), None, Some(plan));
            let ep0 = Endpoint::new(f.clone(), 0);
            let ep1 = Endpoint::new(f.clone(), 1);
            ep0.set_batching(true);
            let key = f.register(1, Segment::new(4096));
            let mut last = 0.0f64;
            for round in 0..20usize {
                for i in 0..4 {
                    ep0.put_implicit(key, round * 64 + i * 8, &[i as u8; 8]).unwrap();
                }
                ep0.put_notified(key, round * 64 + 32, &[7u8; 8], round as u32).unwrap();
                let rec = ep1.notify_pop().expect("in-order single-threaded delivery");
                assert_eq!(rec.tag, round as u32);
                assert!(rec.stamp >= last, "stamps toward one target are monotonic");
                last = rec.stamp;
            }
            (ep0.clock().now(), ep1.clock().now(), f.faults().total_injected())
        };
        let (a0, a1, ai) = run();
        let (b0, b1, bi) = run();
        assert_eq!(a0.to_bits(), b0.to_bits());
        assert_eq!(a1.to_bits(), b1.to_bits());
        assert_eq!(ai, bi);
        assert!(ai > 0, "the armed plan must inject");
    }

    #[test]
    fn drop_all_counts_unconsumed_records() {
        let (f, ep0, ep1, key) = setup();
        ep0.put_notified(key, 0, &[1u8; 8], 1).unwrap();
        ep0.put_notified(key, 8, &[2u8; 8], 2).unwrap();
        assert_eq!(ep1.notify_backlog(), 2);
        assert_eq!(ep1.notify_drop_all(), 2);
        assert_eq!(ep1.notify_backlog(), 0);
        let c = f.counters().snapshot();
        assert_eq!(c.notify_dropped, 2);
        assert_eq!(c.notify_consumed, 0, "dropped records are not consumed");
    }

    #[test]
    fn counters_track_ops() {
        let (f, ep0, _ep1, key) = setup();
        let before = f.counters().snapshot();
        ep0.put(key, 0, &[0u8; 100]).unwrap();
        let mut buf = [0u8; 50];
        ep0.get(key, 0, &mut buf).unwrap();
        ep0.amo(key, 0, AmoOp::Add, 1, 0).unwrap();
        let d = f.counters().snapshot().since(&before);
        assert_eq!((d.puts, d.gets, d.amos), (1, 1, 1));
        assert_eq!((d.bytes_put, d.bytes_get), (100, 50));
    }
}
