//! XPMEM-style intra-node direct mappings.
//!
//! XPMEM is a Linux kernel module that maps one process's memory into
//! another's virtual address space; all accesses then happen with plain
//! loads/stores and CPU atomics (§2.1). Our ranks are threads, so an
//! "attach" simply hands out a shared view of the target's [`Segment`].
//! This is the substrate for MPI-3 *shared memory windows* and for the fast
//! intra-node path of every communication call.

use crate::error::FabricError;
use crate::segment::{SegKey, Segment};
use crate::Fabric;
use std::sync::Arc;

/// A direct mapping of a peer's registered segment.
#[derive(Clone)]
pub struct MappedView {
    seg: Arc<Segment>,
    key: SegKey,
}

impl MappedView {
    /// Attach to a peer segment. Fails with
    /// [`FabricError::CrossNodeAttach`] (permanent) if `key`'s owner is
    /// not on the same node as `my_rank` — XPMEM cannot cross node
    /// boundaries — and, under an armed fault plan, transiently with
    /// [`FabricError::SegmentBusy`]: the kernel module's attach can fail
    /// under memory pressure and callers are expected to retry.
    pub fn attach(fabric: &Fabric, my_rank: u32, key: SegKey) -> Result<Self, FabricError> {
        if !fabric.topology().same_node(my_rank, key.rank) {
            return Err(FabricError::CrossNodeAttach { origin: my_rank, target: key.rank });
        }
        if let Some(retry_after_ns) = fabric.faults().draw_busy(my_rank) {
            return Err(FabricError::SegmentBusy { retry_after_ns });
        }
        let seg = fabric.resolve(key)?;
        Ok(Self { seg, key })
    }

    /// The mapped segment's key.
    pub fn key(&self) -> SegKey {
        self.key
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.seg.len()
    }

    /// True if the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.seg.is_empty()
    }

    /// Direct store (load/store semantics — no NIC involved).
    pub fn store_bytes(&self, off: usize, src: &[u8]) {
        self.seg.write(off, src);
    }

    /// Direct load.
    pub fn load_bytes(&self, off: usize, dst: &mut [u8]) {
        self.seg.read(off, dst);
    }

    /// CPU atomic on the mapped memory (x86 `lock` prefix analogue).
    pub fn atomic(&self, off: usize, op: crate::amo::AmoOp, operand: u64, compare: u64) -> u64 {
        self.seg.amo(off, op, operand, compare)
    }

    /// Load one u64.
    pub fn load_u64(&self, off: usize) -> u64 {
        self.seg.read_u64(off)
    }

    /// Store one u64.
    pub fn store_u64(&self, off: usize, v: u64) {
        self.seg.write_u64(off, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn attach_and_direct_access() {
        let f = Fabric::new(4, 4, CostModel::default());
        let key = f.register(2, Segment::new(256));
        let view = MappedView::attach(&f, 0, key).unwrap();
        view.store_bytes(16, b"hello");
        let mut out = [0u8; 5];
        view.load_bytes(16, &mut out);
        assert_eq!(&out, b"hello");
        assert_eq!(view.len(), 256);
    }

    #[test]
    fn cross_node_attach_is_a_typed_error() {
        let f = Fabric::new(4, 2, CostModel::default());
        let key = f.register(3, Segment::new(8));
        match MappedView::attach(&f, 0, key) {
            Err(FabricError::CrossNodeAttach { origin: 0, target: 3 }) => {}
            other => panic!("expected CrossNodeAttach, got {:?}", other.err()),
        }
    }

    #[test]
    fn attach_surfaces_transient_busy_under_faults() {
        use crate::faults::FaultPlan;
        let plan = FaultPlan { busy_prob: 1.0, ..FaultPlan::heavy(3) };
        let f = Fabric::with_config(2, 2, CostModel::default(), None, Some(plan));
        let key = f.register(1, Segment::new(8));
        match MappedView::attach(&f, 0, key) {
            Err(e @ FabricError::SegmentBusy { .. }) => assert!(e.is_transient()),
            other => panic!("expected SegmentBusy, got {:?}", other.err()),
        }
    }

    #[test]
    fn atomics_visible_across_views() {
        let f = Fabric::new(2, 2, CostModel::default());
        let key = f.register(1, Segment::new(64));
        let a = MappedView::attach(&f, 0, key).unwrap();
        let b = MappedView::attach(&f, 1, key).unwrap();
        a.atomic(8, crate::amo::AmoOp::Add, 7, 0);
        assert_eq!(b.load_u64(8), 7);
    }
}
