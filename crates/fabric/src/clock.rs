//! Per-rank virtual clocks and shared timestamp cells.
//!
//! Every rank carries a monotonically non-decreasing virtual time in
//! nanoseconds. Operations advance it per the [`CostModel`](crate::cost);
//! synchronisation points *join* clocks: a rank that observes a remote event
//! sets its clock to at least the event's completion time. Because clocks
//! never decrease, max-combining through [`StampCell`]s is race-free in the
//! causal sense (a stale maximum can never exceed a current one along any
//! happens-before edge).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A rank-local virtual clock (ns). Not shareable across threads; shared
/// visibility goes through [`StampCell`].
#[derive(Debug, Default)]
pub struct Clock {
    t: Cell<f64>,
}

impl Clock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        Self { t: Cell::new(0.0) }
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> f64 {
        self.t.get()
    }

    /// Advance by `ns` (must be non-negative).
    pub fn advance(&self, ns: f64) {
        debug_assert!(ns >= 0.0, "cannot advance clock by negative time");
        self.t.set(self.t.get() + ns);
    }

    /// Join with an external event time: clock := max(clock, t).
    pub fn join(&self, t: f64) {
        if t > self.t.get() {
            self.t.set(t);
        }
    }

    /// Reset to zero (between benchmark repetitions).
    pub fn reset(&self) {
        self.t.set(0.0);
    }
}

/// A shared, monotonically increasing timestamp (f64 ns stored as ordered
/// bits in an `AtomicU64`). For non-negative floats the IEEE-754 bit pattern
/// is monotone in the value, so `fetch_max` on the bits implements a
/// numeric max.
#[derive(Debug, Default)]
pub struct StampCell(AtomicU64);

impl StampCell {
    /// A stamp cell initialised to time zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Raise the stamp to at least `t`.
    pub fn raise(&self, t: f64) {
        debug_assert!(t >= 0.0);
        self.0.fetch_max(t.to_bits(), Ordering::AcqRel);
    }

    /// Read the current stamp.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Reset to zero. Only safe when no concurrent raisers exist
    /// (e.g. between benchmark repetitions, after a barrier).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Release);
    }
}

/// Encode/decode helpers for stamping timestamps into ordinary u64 words
/// (used by in-segment sync variables whose layout pairs a value word with a
/// stamp word).
pub fn stamp_to_bits(t: f64) -> u64 {
    t.to_bits()
}

/// Inverse of [`stamp_to_bits`].
pub fn bits_to_stamp(b: u64) -> f64 {
    f64::from_bits(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn clock_advances_and_joins() {
        let c = Clock::new();
        c.advance(5.0);
        assert_eq!(c.now(), 5.0);
        c.join(3.0); // no-op, older
        assert_eq!(c.now(), 5.0);
        c.join(9.5);
        assert_eq!(c.now(), 9.5);
        c.reset();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn stamp_is_max_combining() {
        let s = StampCell::new();
        s.raise(10.0);
        s.raise(4.0);
        assert_eq!(s.get(), 10.0);
        s.raise(11.25);
        assert_eq!(s.get(), 11.25);
    }

    #[test]
    fn stamp_concurrent_max() {
        let s = Arc::new(StampCell::new());
        let hs: Vec<_> = (0..8)
            .map(|i| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for k in 0..1000 {
                        s.raise((i * 1000 + k) as f64);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(s.get(), 7999.0);
    }

    #[test]
    fn stamp_never_observed_decreasing() {
        // fetch_max on the bit pattern means a concurrent reader can only
        // ever see the stamp go up, never down.
        let s = Arc::new(StampCell::new());
        let writers: Vec<_> = (0..4)
            .map(|i| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for k in 0..2000 {
                        s.raise((k * 4 + i) as f64 * 0.25);
                    }
                })
            })
            .collect();
        let reader = {
            let s = s.clone();
            std::thread::spawn(move || {
                let mut prev = 0.0;
                for _ in 0..20000 {
                    let t = s.get();
                    assert!(t >= prev, "stamp went backwards: {t} < {prev}");
                    prev = t;
                }
            })
        };
        for h in writers {
            h.join().unwrap();
        }
        reader.join().unwrap();
    }

    #[test]
    fn bit_roundtrip() {
        for t in [0.0, 1.5, 1e12, 123.456] {
            assert_eq!(bits_to_stamp(stamp_to_bits(t)), t);
        }
    }

    #[test]
    fn nonneg_f64_bits_are_monotone() {
        let mut prev = stamp_to_bits(0.0);
        for t in [0.001, 0.5, 1.0, 2.0, 1e3, 1e9, 1e18] {
            let b = stamp_to_bits(t);
            assert!(b > prev);
            prev = b;
        }
    }
}
