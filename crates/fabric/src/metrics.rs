//! The metrics plane: deterministic, merge-ready snapshots.
//!
//! [`snapshot`] freezes everything the fabric counted — global
//! [`crate::Counters`], per-class telemetry aggregates with their log2
//! latency/size histograms, per-window and per-rank attribution, fault
//! injection tallies — into a [`MetricsSnapshot`] that renders as
//! Prometheus text exposition ([`MetricsSnapshot::to_prometheus`]) or
//! single-line JSON ([`MetricsSnapshot::to_json_line`]). Tail quantiles
//! (p50/p99/p999) come from the log2 histograms, and the raw bucket counts
//! ride along in the JSON form so downstream collectors can *merge*
//! snapshots from many jobs ([`HistSnapshot::merge`] is associative).
//!
//! ## Determinism contract
//!
//! Everything in a snapshot derives from **virtual time** and operation
//! counts, so for a seeded, schedule-independent workload two runs (or two
//! snapshots of one run at the same quiescent point) are byte-identical —
//! CI diffs them like the soak CSVs. Wall-clock data ([`crate::profile`])
//! is deliberately excluded; it lives in [`crate::profile::Profiler::report`].
//!
//! ## When to call
//!
//! [`snapshot`] reads the telemetry hub's single-writer areas and is
//! therefore quiescent-point only (after rank threads joined), like
//! [`crate::Telemetry::events`]. The crash paths use [`panic_summary`]
//! instead, which touches only atomics and is safe mid-run from any
//! thread.

use crate::counters::CounterSnapshot;
use crate::faults::FaultKind;
use crate::telemetry::{EventKind, HistSnapshot, WindowStats};
use crate::{Fabric, Transport};

/// Counter names in render order, paired with their values.
fn counter_rows(c: &CounterSnapshot) -> Vec<(&'static str, u64)> {
    vec![
        ("puts", c.puts),
        ("gets", c.gets),
        ("amos", c.amos),
        ("bytes_put", c.bytes_put),
        ("bytes_get", c.bytes_get),
        ("bytes_amo", c.bytes_amo),
        ("gsyncs", c.gsyncs),
        ("flushes", c.flushes),
        ("fences", c.fences),
        ("locks", c.locks),
        ("unlocks", c.unlocks),
        ("batched_ops", c.batched_ops),
        ("batch_flushes", c.batch_flushes),
        ("batch_splits", c.batch_splits),
        ("notify_posts", c.notify_posts),
        ("notify_consumed", c.notify_consumed),
        ("notify_overflows", c.notify_overflows),
        ("notify_dropped", c.notify_dropped),
    ]
}

/// Frozen per-class telemetry: aggregates plus tail quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMetrics {
    /// The op class.
    pub kind: EventKind,
    /// Operations recorded.
    pub count: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Total virtual ns.
    pub total_ns: u64,
    /// Median virtual latency (log2-bucket upper bound).
    pub p50: u64,
    /// 99th-percentile virtual latency.
    pub p99: u64,
    /// 99.9th-percentile virtual latency.
    pub p999: u64,
    /// Mergeable latency distribution.
    pub lat: HistSnapshot,
    /// Mergeable size distribution (RMA classes; empty otherwise).
    pub size: HistSnapshot,
}

/// Per-rank issue-side traffic (peer-matrix row sum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankTraffic {
    /// The issuing rank.
    pub rank: u32,
    /// RMA ops issued.
    pub ops: u64,
    /// Bytes issued.
    pub bytes: u64,
}

/// A frozen, renderable, merge-ready view of the fabric's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Job size.
    pub ranks: usize,
    /// Global counters ([`crate::Counters`]).
    pub counters: CounterSnapshot,
    /// Per-class aggregates, in [`EventKind::ALL`] order, classes with at
    /// least one event only.
    pub classes: Vec<ClassMetrics>,
    /// Per-window aggregates, sorted by window id.
    pub windows: Vec<(u64, WindowStats)>,
    /// Per-rank issue-side traffic, in rank order, active ranks only.
    pub rank_traffic: Vec<RankTraffic>,
    /// Issue-side traffic split by peer class (transport): `(name, ops,
    /// bytes)` for `xpmem` then `dmapp`.
    pub transport_traffic: Vec<(&'static str, u64, u64)>,
    /// Fault injections per class, in [`FaultKind::ALL`] order.
    pub faults: Vec<(&'static str, u64)>,
    /// Telemetry ring overwrites (a nonzero value means the *event* stream
    /// is truncated; aggregates here are still complete).
    pub dropped: u64,
}

/// Freeze the fabric's metrics. Quiescent-point only (see module docs).
pub fn snapshot(fabric: &Fabric) -> MetricsSnapshot {
    let tel = fabric.telemetry();
    let classes = EventKind::ALL
        .iter()
        .filter_map(|&kind| {
            let s = tel.stats(kind);
            if s.count() == 0 {
                return None;
            }
            Some(ClassMetrics {
                kind,
                count: s.count(),
                bytes: s.bytes(),
                total_ns: s.total_ns(),
                p50: s.lat.quantile_hi(0.5),
                p99: s.lat.quantile_hi(0.99),
                p999: s.lat.quantile_hi(0.999),
                lat: s.lat.snapshot(),
                size: if kind.is_rma() { s.size.snapshot() } else { HistSnapshot::default() },
            })
        })
        .collect();
    let peers = tel.peer_matrix();
    let mut rank_traffic = Vec::new();
    let mut by_transport = [(Transport::Xpmem, 0u64, 0u64), (Transport::Dmapp, 0u64, 0u64)];
    for (origin, row) in peers.iter().enumerate() {
        let (mut ops, mut bytes) = (0u64, 0u64);
        for (target, cell) in row.iter().enumerate() {
            ops += cell.ops;
            bytes += cell.bytes;
            if cell.ops > 0 {
                let tr = fabric.transport(origin as u32, target as u32);
                let slot = by_transport.iter_mut().find(|(t, _, _)| *t == tr).unwrap();
                slot.1 += cell.ops;
                slot.2 += cell.bytes;
            }
        }
        if ops > 0 {
            rank_traffic.push(RankTraffic { rank: origin as u32, ops, bytes });
        }
    }
    let transport_traffic = by_transport
        .iter()
        .map(|&(t, ops, bytes)| (if t == Transport::Xpmem { "xpmem" } else { "dmapp" }, ops, bytes))
        .collect();
    MetricsSnapshot {
        ranks: fabric.num_ranks(),
        counters: fabric.counters().snapshot(),
        classes,
        windows: tel.window_summaries(),
        rank_traffic,
        transport_traffic,
        faults: FaultKind::ALL.iter().map(|&k| (k.name(), fabric.faults().injected(k))).collect(),
        dropped: tel.dropped(),
    }
}

impl MetricsSnapshot {
    /// Prometheus text exposition (the `text/plain; version=0.0.4`
    /// format). Deterministic: fixed family order, fixed label order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP fompi_ranks Ranks in the simulated job.\n");
        out.push_str("# TYPE fompi_ranks gauge\n");
        out.push_str(&format!("fompi_ranks {}\n", self.ranks));
        out.push_str("# HELP fompi_counter Global fabric operation counters.\n");
        out.push_str("# TYPE fompi_counter counter\n");
        for (name, v) in counter_rows(&self.counters) {
            out.push_str(&format!("fompi_counter{{name=\"{name}\"}} {v}\n"));
        }
        if !self.classes.is_empty() {
            out.push_str("# HELP fompi_op_count Operations recorded per class.\n");
            out.push_str("# TYPE fompi_op_count counter\n");
            for c in &self.classes {
                out.push_str(&format!(
                    "fompi_op_count{{class=\"{}\"}} {}\n",
                    c.kind.name(),
                    c.count
                ));
            }
            out.push_str("# HELP fompi_op_bytes Bytes moved per class.\n");
            out.push_str("# TYPE fompi_op_bytes counter\n");
            for c in &self.classes {
                out.push_str(&format!(
                    "fompi_op_bytes{{class=\"{}\"}} {}\n",
                    c.kind.name(),
                    c.bytes
                ));
            }
            out.push_str("# HELP fompi_op_virtual_ns_total Total virtual latency per class.\n");
            out.push_str("# TYPE fompi_op_virtual_ns_total counter\n");
            for c in &self.classes {
                out.push_str(&format!(
                    "fompi_op_virtual_ns_total{{class=\"{}\"}} {}\n",
                    c.kind.name(),
                    c.total_ns
                ));
            }
            out.push_str(
                "# HELP fompi_op_virtual_ns Virtual latency quantiles (log2-bucket upper bounds).\n",
            );
            out.push_str("# TYPE fompi_op_virtual_ns summary\n");
            for c in &self.classes {
                for (q, v) in [("0.5", c.p50), ("0.99", c.p99), ("0.999", c.p999)] {
                    out.push_str(&format!(
                        "fompi_op_virtual_ns{{class=\"{}\",quantile=\"{q}\"}} {v}\n",
                        c.kind.name()
                    ));
                }
            }
        }
        if !self.rank_traffic.is_empty() {
            out.push_str("# HELP fompi_rank_ops RMA ops issued per rank.\n");
            out.push_str("# TYPE fompi_rank_ops counter\n");
            for r in &self.rank_traffic {
                out.push_str(&format!("fompi_rank_ops{{rank=\"{}\"}} {}\n", r.rank, r.ops));
            }
            out.push_str("# HELP fompi_rank_bytes Bytes issued per rank.\n");
            out.push_str("# TYPE fompi_rank_bytes counter\n");
            for r in &self.rank_traffic {
                out.push_str(&format!("fompi_rank_bytes{{rank=\"{}\"}} {}\n", r.rank, r.bytes));
            }
        }
        out.push_str("# HELP fompi_transport_ops RMA ops per peer class.\n");
        out.push_str("# TYPE fompi_transport_ops counter\n");
        for (name, ops, bytes) in &self.transport_traffic {
            out.push_str(&format!("fompi_transport_ops{{transport=\"{name}\"}} {ops}\n"));
            out.push_str(&format!("fompi_transport_bytes{{transport=\"{name}\"}} {bytes}\n"));
        }
        if !self.windows.is_empty() {
            out.push_str("# HELP fompi_window_ops Operations attributed per window.\n");
            out.push_str("# TYPE fompi_window_ops counter\n");
            for (id, w) in &self.windows {
                out.push_str(&format!("fompi_window_ops{{win=\"{id}\"}} {}\n", w.ops()));
                out.push_str(&format!("fompi_window_bytes{{win=\"{id}\"}} {}\n", w.bytes));
                out.push_str(&format!("fompi_window_busy_ns{{win=\"{id}\"}} {}\n", w.busy_ns));
            }
        }
        for (name, v) in &self.faults {
            out.push_str(&format!("fompi_fault_injected{{kind=\"{name}\"}} {v}\n"));
        }
        out.push_str(&format!("fompi_telemetry_dropped {}\n", self.dropped));
        out
    }

    /// Single-line JSON form — what a cross-backend orchestrator ingests
    /// and merges. The per-class `lat`/`size` entries are the raw log2
    /// bucket counts as `[bucket, count]` pairs, so merging snapshots is
    /// bucket-wise addition. Key order is fixed; output is deterministic.
    pub fn to_json_line(&self) -> String {
        fn buckets_json(h: &HistSnapshot) -> String {
            let mut out = String::from("[");
            let mut first = true;
            for i in 0..crate::telemetry::BUCKETS {
                let n = h.count(i);
                if n > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("[{i},{n}]"));
                }
            }
            out.push(']');
            out
        }
        let mut out = String::from("{");
        out.push_str(&format!("\"ranks\":{}", self.ranks));
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in counter_rows(&self.counters).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"classes\":[");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"class\":\"{}\",\"count\":{},\"bytes\":{},\"virtual_ns\":{},\
                 \"p50\":{},\"p99\":{},\"p999\":{},\"lat\":{}",
                c.kind.name(),
                c.count,
                c.bytes,
                c.total_ns,
                c.p50,
                c.p99,
                c.p999,
                buckets_json(&c.lat),
            ));
            if c.kind.is_rma() {
                out.push_str(&format!(",\"size\":{}", buckets_json(&c.size)));
            }
            out.push('}');
        }
        out.push_str("],\"rank_traffic\":[");
        for (i, r) in self.rank_traffic.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rank\":{},\"ops\":{},\"bytes\":{}}}",
                r.rank, r.ops, r.bytes
            ));
        }
        out.push_str("],\"transports\":[");
        for (i, (name, ops, bytes)) in self.transport_traffic.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"transport\":\"{name}\",\"ops\":{ops},\"bytes\":{bytes}}}"));
        }
        out.push_str("],\"windows\":[");
        for (i, (id, w)) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"win\":{id},\"puts\":{},\"gets\":{},\"amos\":{},\"syncs\":{},\
                 \"bytes\":{},\"busy_ns\":{}}}",
                w.puts, w.gets, w.amos, w.syncs, w.bytes, w.busy_ns
            ));
        }
        out.push_str("],\"faults\":{");
        for (i, (name, v)) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str(&format!("}},\"dropped\":{}}}", self.dropped));
        out
    }
}

/// A crash-safe metrics summary: **atomics only** — no telemetry
/// single-writer areas, no locks — so it may be called mid-run from a
/// panicking rank thread while other ranks are still issuing. Pairs with
/// the flight recorder's last-N event dump.
pub fn panic_summary(fabric: &Fabric) -> String {
    let mut out = String::new();
    let c = fabric.counters().snapshot();
    out.push_str("== metrics (crash summary; counters are atomics-only) ==\n");
    for (name, v) in counter_rows(&c) {
        if v > 0 {
            out.push_str(&format!("  {name}: {v}\n"));
        }
    }
    let tel = fabric.telemetry();
    if tel.enabled() {
        for kind in EventKind::ALL {
            let s = tel.stats(kind);
            if s.count() > 0 {
                out.push_str(&format!(
                    "  {}: {} ops, p50 {} ns, p99 {} ns, p999 {} ns\n",
                    kind.name(),
                    s.count(),
                    s.lat.quantile_hi(0.5),
                    s.lat.quantile_hi(0.99),
                    s.lat.quantile_hi(0.999),
                ));
            }
        }
    }
    let injected = fabric.faults().total_injected();
    if injected > 0 {
        out.push_str(&format!("  faults injected: {injected}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Event, Flavor, NO_TARGET};
    use crate::CostModel;

    fn put_ev(origin: u32, target: u32, win: u64, bytes: u64, t0: f64, t1: f64) -> Event {
        Event {
            kind: EventKind::Put,
            flavor: Flavor::Blocking,
            transport: Some(Transport::Dmapp),
            origin,
            target,
            win,
            bytes,
            t_start: t0,
            t_end: t1,
            ..Event::default()
        }
    }

    fn traced_fabric() -> std::sync::Arc<Fabric> {
        let f = Fabric::new_traced(2, 1, CostModel::default(), 64);
        f.telemetry().record(put_ev(0, 1, 7, 100, 0.0, 1500.0));
        f.telemetry().record(put_ev(0, 1, 7, 8, 1500.0, 2000.0));
        f.telemetry().record(Event {
            kind: EventKind::Fence,
            origin: 1,
            target: NO_TARGET,
            win: 7,
            t_start: 0.0,
            t_end: 2900.0,
            ..Event::default()
        });
        f.counters().puts.fetch_add(2, std::sync::atomic::Ordering::Relaxed);
        f
    }

    #[test]
    fn snapshot_has_put_quantiles_in_both_forms() {
        let f = traced_fabric();
        let s = snapshot(&f);
        let put = s.classes.iter().find(|c| c.kind == EventKind::Put).unwrap();
        assert_eq!(put.count, 2);
        assert!(put.p50 > 0 && put.p99 >= put.p50 && put.p999 >= put.p99);
        let prom = s.to_prometheus();
        assert!(prom.contains("fompi_op_virtual_ns{class=\"put\",quantile=\"0.5\"}"), "{prom}");
        assert!(prom.contains("quantile=\"0.99\""));
        assert!(prom.contains("quantile=\"0.999\""));
        assert!(prom.contains("fompi_counter{name=\"puts\"} 2"));
        assert!(prom.contains("fompi_transport_ops{transport=\"dmapp\"} 2"));
        assert!(prom.contains("fompi_window_ops{win=\"7\"} 3"));
        let json = s.to_json_line();
        assert!(!json.contains('\n'), "single line");
        assert!(json.contains("\"class\":\"put\""));
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"p999\":"));
        assert!(json.contains("\"lat\":[["));
        assert!(json.contains("\"size\":[["));
    }

    #[test]
    fn snapshots_of_one_state_are_byte_identical() {
        let f = traced_fabric();
        let a = snapshot(&f);
        let b = snapshot(&f);
        assert_eq!(a, b);
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        assert_eq!(a.to_json_line(), b.to_json_line());
    }

    #[test]
    fn empty_fabric_renders_cleanly() {
        let f = Fabric::new(1, 1, CostModel::default());
        let s = snapshot(&f);
        assert!(s.classes.is_empty());
        let prom = s.to_prometheus();
        assert!(prom.contains("fompi_ranks 1"));
        assert!(prom.contains("fompi_telemetry_dropped 0"));
        let json = s.to_json_line();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"classes\":[]"));
    }

    #[test]
    fn panic_summary_is_atomics_only_and_renderable() {
        let f = traced_fabric();
        let s = panic_summary(&f);
        assert!(s.contains("puts: 2"));
        assert!(s.contains("p999"));
    }
}
