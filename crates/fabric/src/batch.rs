//! Issue-side small-operation batching (write-combining injection queues).
//!
//! The paper's small-message figures pay the full injection overhead
//! (o = 416 ns inter-node) *per operation*: ten 8-byte puts cost ten
//! doorbell rings even though the NIC could take them as one descriptor
//! chain. Issue-side batching — the optimisation Storm-style RMA engines
//! apply on this exact path — keeps one *open burst* per target and
//! write-combines adjacent small puts (and coalesces non-fetching AMOs)
//! into it. In LogGP terms the first operation of a burst pays the full
//! overhead `o`; each subsequent coalesced operation pays only the
//! per-message gap `g` (≪ o), and the whole burst ships as a single wire
//! message of the combined size, paying `G` per byte once.
//!
//! Coalescing stops — the burst is *retired* and a new one opened — when:
//!
//! * the next operation is not contiguous with the burst (write-combining
//!   requires `offset == start + len`), targets a different segment, or is
//!   a different kind (put vs AMO: interleaving kinds retires the open
//!   burst first, which preserves program order within the DMAPP ordered
//!   class by construction);
//! * combining would reach the 4 KiB protocol-change size
//!   ([`crate::CostModel::dmapp_proto_change_bytes`]): bursts exist to
//!   amortise the *small-message* protocol, so they never grow into the
//!   rendezvous regime;
//! * the burst already holds [`crate::CostModel::batch_max_ops`]
//!   operations (bounded descriptor chains, like real NIC doorbells).
//!
//! Data still moves **eagerly**, in program order, at issue — batching
//! defers only the *virtual-time* completion accounting. Memory effects
//! (what a polling peer can observe) are therefore identical with and
//! without batching; only the cost model changes. Batching is opt-in
//! (default off) so the calibrated per-op figures stay bit-identical.
//!
//! Fault determinism: faults are still drawn once per *operation* at issue
//! (same call sites, same counts as the unbatched path — see
//! [`crate::faults`]); the drawn completion extras fold into the burst as
//! a running max, since delayed members retire together.

use crate::segment::SegKey;

/// What a burst coalesces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstKind {
    /// Write-combined contiguous puts.
    Put,
    /// Coalesced non-fetching 8-byte AMOs.
    Amo,
}

/// One open per-target injection burst.
#[derive(Debug, Clone)]
pub struct Burst {
    /// Segment every member targets.
    pub key: SegKey,
    /// Put or AMO burst.
    pub kind: BurstKind,
    /// Offset of the first member.
    pub start: usize,
    /// Combined payload length so far (contiguous from `start` for puts).
    pub len: usize,
    /// Operations coalesced so far.
    pub ops: u64,
    /// Largest per-op fault extra (jitter/spike/delay) drawn by a member;
    /// the whole burst retires no earlier than its slowest member.
    pub extra_ns: f64,
    /// Virtual time at which the burst opened (before its injection charge)
    /// — the `t_start` of the burst's telemetry span.
    pub t_open: f64,
    /// Causal flow id of the burst's *first* member (later members'
    /// individual flows are subsumed — a coalesced burst is one wire
    /// message, so it carries one flow). 0 when tracing is off.
    pub flow: u64,
}

impl Burst {
    /// Open a burst with its first member.
    pub fn open(
        key: SegKey,
        kind: BurstKind,
        off: usize,
        len: usize,
        extra_ns: f64,
        t_open: f64,
        flow: u64,
    ) -> Self {
        Burst { key, kind, start: off, len, ops: 1, extra_ns, t_open, flow }
    }

    /// Can `(key, kind, off, len)` coalesce into this burst? Checks segment
    /// identity, kind, contiguity, the protocol-change ceiling and the op
    /// cap (see module docs for why each stop exists).
    pub fn accepts(
        &self,
        key: SegKey,
        kind: BurstKind,
        off: usize,
        len: usize,
        proto_change_bytes: usize,
        max_ops: u64,
    ) -> bool {
        self.key == key
            && self.kind == kind
            && off == self.start + self.len
            && self.len.saturating_add(len) < proto_change_bytes
            && self.ops < max_ops
    }

    /// Fold one more member in (caller checked [`Burst::accepts`]).
    pub fn push(&mut self, len: usize, extra_ns: f64) {
        self.len += len;
        self.ops += 1;
        if extra_ns > self.extra_ns {
            self.extra_ns = extra_ns;
        }
    }
}

/// Per-endpoint batching switch and queue state lives on
/// [`crate::Endpoint`] (`bursts: RefCell<BTreeMap<u32, Burst>>` — a BTree
/// so drain order is deterministic regardless of insertion history).
#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SegKey {
        SegKey { rank: 1, id: 7 }
    }

    #[test]
    fn contiguous_same_kind_coalesces() {
        let mut b = Burst::open(key(), BurstKind::Put, 64, 8, 0.0, 0.0, 0);
        assert!(b.accepts(key(), BurstKind::Put, 72, 8, 4096, 64));
        b.push(8, 0.0);
        assert_eq!((b.start, b.len, b.ops), (64, 16, 2));
        // A gap, an overlap, or a backwards offset all refuse.
        assert!(!b.accepts(key(), BurstKind::Put, 88, 8, 4096, 64));
        assert!(!b.accepts(key(), BurstKind::Put, 72, 8, 4096, 64));
        assert!(!b.accepts(key(), BurstKind::Put, 0, 8, 4096, 64));
    }

    #[test]
    fn kind_and_segment_switches_refuse() {
        let b = Burst::open(key(), BurstKind::Put, 0, 8, 0.0, 0.0, 0);
        assert!(!b.accepts(key(), BurstKind::Amo, 8, 8, 4096, 64));
        let other = SegKey { rank: 1, id: 8 };
        assert!(!b.accepts(other, BurstKind::Put, 8, 8, 4096, 64));
    }

    #[test]
    fn proto_change_is_a_hard_ceiling() {
        let mut b = Burst::open(key(), BurstKind::Put, 0, 512, 0.0, 0.0, 0);
        for _ in 0..6 {
            assert!(b.accepts(key(), BurstKind::Put, b.start + b.len, 512, 4096, 64));
            b.push(512, 0.0);
        }
        assert_eq!(b.len, 3584);
        // The member that would reach exactly 4096 must split instead:
        // bursts never enter the rendezvous protocol.
        assert!(!b.accepts(key(), BurstKind::Put, 3584, 512, 4096, 64));
        // A smaller tail that stays below the switch still fits.
        assert!(b.accepts(key(), BurstKind::Put, 3584, 511, 4096, 64));
    }

    #[test]
    fn op_cap_bounds_chains() {
        let mut b = Burst::open(key(), BurstKind::Amo, 0, 8, 0.0, 0.0, 0);
        for _ in 0..3 {
            b.push(8, 0.0);
        }
        assert!(!b.accepts(key(), BurstKind::Amo, 32, 8, 4096, 4));
        assert!(b.accepts(key(), BurstKind::Amo, 32, 8, 4096, 5));
    }

    #[test]
    fn extras_fold_as_running_max() {
        let mut b = Burst::open(key(), BurstKind::Put, 0, 8, 30.0, 0.0, 0);
        b.push(8, 10.0);
        assert_eq!(b.extra_ns, 30.0);
        b.push(8, 70.0);
        assert_eq!(b.extra_ns, 70.0);
    }
}
