//! Model-checker gate: the hook surface `fompi-mc` schedules through.
//!
//! The model checker (crate `fompi-mc`) explores rank interleavings by
//! serializing the whole job: at every *scheduling point* — a remote
//! operation about to touch shared state, a notification-ring
//! interaction, a wait loop about to re-poll, a runtime collective — the
//! acting rank announces itself to an installed [`McGate`] and parks
//! until the gate grants it the global execution token. The fabric side
//! (this module) only defines the vocabulary and the plumbing; the
//! scheduler, partial-order reduction and counterexample machinery live
//! in `fompi-mc`, which implements the trait.
//!
//! Gating follows the racecheck/faults idiom: no gate installed means
//! one relaxed load per op ([`crate::Fabric::mc_armed`]) and zero
//! behaviour change. A gate is launch-time configuration
//! (`Universe::mc_gate`), never mutated mid-run.
//!
//! # The conflict relation
//!
//! Partial-order reduction needs to know when two operations *commute*
//! (executing them in either order yields identical rank-visible state).
//! [`ops_conflict`] keys this on the same (window/segment, target,
//! byte-range, access-kind) tuple the dynamic race checker classifies —
//! [`McOp::kind`] is literally [`shadow::AccessKind`] — but with a
//! stricter predicate than race *legality*: a fetching AMO may legally
//! overlap a same-op accumulate (MPI-3.0 §11.7.1), yet the fetched value
//! observes the order, so the checker must still explore both orders.
//! [`shadow::kinds_commute`] carries the kind-level algebra shared by
//! both relations; [`McOp::fetch`] adds the result-observation bit the
//! shadow records do not need.
//!
//! Notification rings are modelled as single conflict objects
//! ([`McObj::Ring`]): every push, pop and emptiness probe on one rank's
//! ring conflicts with every other. This is deliberately conservative —
//! ring operations shift cursors and wake waiters, so almost every pair
//! genuinely fails to commute, and the pennies a finer relation would
//! save do not cover the soundness risk.

use crate::shadow::{self, AccessKind};
use std::fmt;

/// The shared object a scheduled operation acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McObj {
    /// Bytes of a registered segment (a window's data or meta segment).
    Seg {
        /// Owning rank of the segment.
        owner: u32,
        /// Registration id ([`crate::SegKey::id`]).
        id: u64,
    },
    /// The notification ring of a rank (all ops on one ring conflict).
    Ring(u32),
}

/// One announced operation: what the rank is about to do to shared
/// state, in the vocabulary the DPOR conflict relation understands.
#[derive(Debug, Clone)]
pub struct McOp {
    /// Object acted on.
    pub obj: McObj,
    /// Byte interval `[lo, hi)` for segment objects (ignored for rings).
    pub lo: usize,
    /// Exclusive upper bound of the interval.
    pub hi: usize,
    /// Access class, shared with the race checker's shadow records.
    pub kind: AccessKind,
    /// Does the op return a value read from the object (fetching AMO,
    /// CAS)? A fetch observes ordering even where the overlap itself is
    /// MPI-legal, so it never commutes with a writer.
    pub fetch: bool,
    /// Static label for schedules and counterexamples (e.g. `"put"`).
    pub label: &'static str,
}

impl fmt::Display for McOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.obj {
            McObj::Ring(r) => write!(f, "{}@ring{}", self.label, r),
            McObj::Seg { owner, id } => {
                write!(f, "{}@seg{}.{}[{},{})", self.label, owner, id, self.lo, self.hi)
            }
        }
    }
}

/// Do two announced operations conflict — i.e. can swapping their order
/// change any rank-visible value? The segment arm is the shadow's
/// (window, target, byte-range, access-kind) relation plus the fetch
/// bit; ring operations conflict whenever they touch the same ring.
pub fn ops_conflict(a: &McOp, b: &McOp) -> bool {
    if a.obj != b.obj {
        return false;
    }
    match a.obj {
        McObj::Ring(_) => true,
        McObj::Seg { .. } => {
            if a.hi <= b.lo || b.hi <= a.lo {
                return false;
            }
            // Two pure reads commute no matter what they fetch.
            if !a.kind.writes() && !b.kind.writes() {
                return false;
            }
            if a.fetch || b.fetch {
                return true;
            }
            !shadow::kinds_commute(a.kind, b.kind)
        }
    }
}

/// The scheduling gate a model checker installs via
/// [`crate::Fabric::set_mc_gate`]. Every method blocks the calling rank
/// until the checker grants it the execution token; the operation (or
/// poll re-check, or collective exit) then runs on the caller's thread.
///
/// Implementations abort an exploration by panicking out of these
/// methods with a payload the checker's own rank wrappers recognise —
/// the fabric never catches it.
pub trait McGate: Send + Sync {
    /// Announce `op` and park; on return the rank holds the token and
    /// must immediately perform exactly the announced operation.
    fn op(&self, rank: u32, op: McOp);

    /// Park until `pred` is true *and* the rank is scheduled. The gate
    /// evaluates `pred` under its own lock when computing enabled sets;
    /// `obj` names the conflict object the predicate observes (a wake is
    /// a read of that object, and participates in the conflict relation
    /// like any other).
    fn poll(
        &self,
        rank: u32,
        obj: McObj,
        label: &'static str,
        pred: Box<dyn Fn() -> bool + Send + Sync>,
    );

    /// Enter a job-wide collective; returns once every rank has arrived
    /// and this rank is scheduled out. The `bool` is the leader flag
    /// (lowest participating rank) — the runtime uses it to run
    /// leader-only work such as the shadow's `process_sync`.
    fn collective(&self, rank: u32, label: &'static str) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::ACC_NOOP;

    fn seg(lo: usize, hi: usize, kind: AccessKind, fetch: bool) -> McOp {
        McOp { obj: McObj::Seg { owner: 0, id: 1 }, lo, hi, kind, fetch, label: "t" }
    }

    #[test]
    fn disjoint_ranges_commute() {
        let a = seg(0, 8, AccessKind::Put, false);
        let b = seg(8, 16, AccessKind::Put, false);
        assert!(!ops_conflict(&a, &b));
    }

    #[test]
    fn overlapping_writes_conflict() {
        let a = seg(0, 8, AccessKind::Put, false);
        let b = seg(4, 12, AccessKind::Put, false);
        assert!(ops_conflict(&a, &b));
        assert!(ops_conflict(&b, &a));
    }

    #[test]
    fn reads_commute_and_read_write_does_not() {
        let r = seg(0, 8, AccessKind::Get, false);
        let w = seg(0, 8, AccessKind::Put, false);
        assert!(!ops_conflict(&r, &r.clone()));
        assert!(ops_conflict(&r, &w));
    }

    #[test]
    fn same_op_accumulates_commute_unless_fetching() {
        let sum = seg(0, 8, AccessKind::Acc(0), false);
        let sum_fetch = seg(0, 8, AccessKind::Acc(0), true);
        let min = seg(0, 8, AccessKind::Acc(1), false);
        // Matches the shadow's same-op carve-out...
        assert!(!ops_conflict(&sum, &sum.clone()));
        assert!(ops_conflict(&sum, &min));
        // ...but a fetching same-op AMO observes the order, so the
        // checker must explore both interleavings even though the
        // overlap is race-legal.
        assert!(ops_conflict(&sum, &sum_fetch));
        assert!(ops_conflict(&sum_fetch, &sum_fetch.clone()));
    }

    #[test]
    fn noop_read_amo_commutes_with_reads_only() {
        let noop = seg(0, 8, AccessKind::Acc(ACC_NOOP), true);
        let get = seg(0, 8, AccessKind::Get, false);
        let sum = seg(0, 8, AccessKind::Acc(0), false);
        assert!(!ops_conflict(&noop, &get));
        assert!(!ops_conflict(&noop, &noop.clone()));
        // Race-legal overlap (§11.7.1) that still fails to commute.
        assert!(ops_conflict(&noop, &sum));
    }

    #[test]
    fn ring_ops_always_conflict_on_the_same_ring() {
        let push = McOp {
            obj: McObj::Ring(2),
            lo: 0,
            hi: 0,
            kind: AccessKind::Put,
            fetch: false,
            label: "push",
        };
        let probe = McOp {
            obj: McObj::Ring(2),
            lo: 0,
            hi: 0,
            kind: AccessKind::Get,
            fetch: false,
            label: "probe",
        };
        let other = McOp { obj: McObj::Ring(3), ..probe.clone() };
        assert!(ops_conflict(&push, &probe));
        assert!(ops_conflict(&probe, &probe.clone()));
        assert!(!ops_conflict(&push, &other));
    }

    #[test]
    fn different_segments_never_conflict() {
        let a = McOp { obj: McObj::Seg { owner: 0, id: 1 }, ..seg(0, 8, AccessKind::Put, false) };
        let b = McOp { obj: McObj::Seg { owner: 0, id: 2 }, ..seg(0, 8, AccessKind::Put, false) };
        assert!(!ops_conflict(&a, &b));
    }

    #[test]
    fn op_display_is_compact() {
        assert_eq!(seg(0, 8, AccessKind::Put, false).to_string(), "t@seg0.1[0,8)");
        let ring = McOp {
            obj: McObj::Ring(1),
            lo: 0,
            hi: 0,
            kind: AccessKind::Get,
            fetch: false,
            label: "pop",
        };
        assert_eq!(ring.to_string(), "pop@ring1");
    }
}
