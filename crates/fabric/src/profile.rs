//! Wall-clock profiling of the *real* threaded runtime.
//!
//! Everything else in this crate measures **virtual** time — the LogGP
//! cost model's nanoseconds. This module measures the other axis: how much
//! actual CPU wall time the simulation spends executing each operation
//! class, the "are we silently wasting the hardware budget" question (the
//! Quo Vadis concern from the roadmap). The two time domains never mix:
//! the profiler reads `std::time::Instant`, touches no [`crate::Clock`],
//! and its results are explicitly excluded from the deterministic metrics
//! snapshot (wall time varies run to run; virtual time must not).
//!
//! ## Modes (`FOMPI_PROFILE`)
//!
//! * `off` (default) — the disabled path is a single relaxed load and a
//!   branch; no `Instant::now()` call, zero virtual-time charge.
//! * `sample` — every [`SAMPLE_PERIOD`]'th operation is timed; the rest
//!   pay one relaxed load plus one relaxed `fetch_add`.
//! * `full` — every operation is timed (two `Instant::now()` calls each).
//!
//! A malformed `FOMPI_PROFILE` value is a startup panic, not a silent
//! `off` — same contract as `FOMPI_FAULTS`.

use crate::telemetry::{EventKind, Histogram};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// In `sample` mode, one in this many operations is timed.
pub const SAMPLE_PERIOD: u64 = 64;

/// Profiling intensity (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum ProfileMode {
    /// No wall-clock timing at all (one relaxed load per op).
    #[default]
    Off,
    /// Time one in [`SAMPLE_PERIOD`] operations.
    Sample,
    /// Time every operation.
    Full,
}

impl ProfileMode {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            ProfileMode::Off => "off",
            ProfileMode::Sample => "sample",
            ProfileMode::Full => "full",
        }
    }

    /// Parse a `FOMPI_PROFILE` value. `Err` carries the offending value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim() {
            "" | "0" | "off" => Ok(ProfileMode::Off),
            "sample" => Ok(ProfileMode::Sample),
            "1" | "full" => Ok(ProfileMode::Full),
            other => Err(format!("invalid FOMPI_PROFILE `{other}` (expected off|sample|full)")),
        }
    }

    /// Mode from the environment; unset means [`ProfileMode::Off`]. A
    /// malformed value panics loudly — a typo'd profiling run must never
    /// quietly report nothing.
    pub fn from_env() -> Self {
        match std::env::var("FOMPI_PROFILE") {
            Ok(v) => match Self::parse(&v) {
                Ok(m) => m,
                Err(e) => panic!("{e}"),
            },
            Err(_) => ProfileMode::Off,
        }
    }
}

/// Wall-clock aggregate for one [`EventKind`].
#[derive(Debug, Default)]
pub struct WallStats {
    count: AtomicU64,
    ns: AtomicU64,
    /// Wall-latency distribution (real ns).
    pub hist: Histogram,
}

impl WallStats {
    /// Timed operations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total wall ns across timed operations.
    pub fn total_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Mean wall ns per timed operation (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_ns() as f64 / n as f64
        }
    }
}

/// The wall-clock profiler hub: one per [`crate::Fabric`].
#[derive(Debug)]
pub struct Profiler {
    mode: AtomicU8,
    /// Global sampling tick (`sample` mode). Deliberately schedule-
    /// dependent — it only decides which wall-clock samples are taken and
    /// never feeds back into virtual time.
    tick: AtomicU64,
    slots: Box<[WallStats]>,
}

impl Profiler {
    /// A profiler in `mode`.
    pub fn new(mode: ProfileMode) -> Self {
        Profiler {
            mode: AtomicU8::new(mode as u8),
            tick: AtomicU64::new(0),
            slots: (0..EventKind::COUNT).map(|_| WallStats::default()).collect(),
        }
    }

    /// A profiler configured from `FOMPI_PROFILE`.
    pub fn from_env() -> Self {
        Self::new(ProfileMode::from_env())
    }

    /// The mode in force.
    #[inline]
    pub fn mode(&self) -> ProfileMode {
        match self.mode.load(Ordering::Relaxed) {
            0 => ProfileMode::Off,
            1 => ProfileMode::Sample,
            _ => ProfileMode::Full,
        }
    }

    /// Switch modes at runtime (launch-time configuration; mirrors
    /// [`crate::Fabric::set_batch_default`]).
    pub fn set_mode(&self, mode: ProfileMode) {
        self.mode.store(mode as u8, Ordering::Relaxed);
    }

    /// Open a timing scope. `None` (the common case when off or not
    /// sampled) costs one relaxed load, plus one relaxed `fetch_add` in
    /// `sample` mode. Never touches virtual time.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        match self.mode.load(Ordering::Relaxed) {
            0 => None,
            1 => {
                if self.tick.fetch_add(1, Ordering::Relaxed).is_multiple_of(SAMPLE_PERIOD) {
                    Some(Instant::now())
                } else {
                    None
                }
            }
            _ => Some(Instant::now()),
        }
    }

    /// Close a timing scope opened by [`Profiler::start`], attributing the
    /// elapsed wall time to `kind`. No-op for `None` scopes.
    #[inline]
    pub fn finish(&self, kind: EventKind, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.finish_slow(kind, t0);
        }
    }

    #[inline(never)]
    fn finish_slow(&self, kind: EventKind, t0: Instant) {
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let s = &self.slots[kind.index()];
        s.count.fetch_add(1, Ordering::Relaxed);
        s.ns.fetch_add(ns, Ordering::Relaxed);
        s.hist.record(ns);
    }

    /// Wall-clock aggregates for one op class.
    pub fn stats(&self, kind: EventKind) -> &WallStats {
        &self.slots[kind.index()]
    }

    /// Total timed operations across all classes.
    pub fn total_count(&self) -> u64 {
        self.slots.iter().map(|s| s.count()).sum()
    }

    /// Human-readable wall-clock table (classes with at least one sample),
    /// with log2-quantile tails. Empty string when nothing was timed.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for kind in EventKind::ALL {
            let s = self.stats(kind);
            if s.count() == 0 {
                continue;
            }
            if out.is_empty() {
                out.push_str(&format!(
                    "== wall-clock profile ({} mode) ==\n{:<12} {:>10} {:>14} {:>12} {:>10} {:>10} {:>10}\n",
                    self.mode().name(),
                    "class",
                    "samples",
                    "total_ns",
                    "mean_ns",
                    "p50",
                    "p99",
                    "p999"
                ));
            }
            out.push_str(&format!(
                "{:<12} {:>10} {:>14} {:>12.1} {:>10} {:>10} {:>10}\n",
                kind.name(),
                s.count(),
                s.total_ns(),
                s.mean_ns(),
                s.hist.quantile_hi(0.5),
                s.hist.quantile_hi(0.99),
                s.hist.quantile_hi(0.999),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_modes() {
        assert_eq!(ProfileMode::parse("off"), Ok(ProfileMode::Off));
        assert_eq!(ProfileMode::parse("0"), Ok(ProfileMode::Off));
        assert_eq!(ProfileMode::parse(""), Ok(ProfileMode::Off));
        assert_eq!(ProfileMode::parse("sample"), Ok(ProfileMode::Sample));
        assert_eq!(ProfileMode::parse("full"), Ok(ProfileMode::Full));
        assert_eq!(ProfileMode::parse("1"), Ok(ProfileMode::Full));
        assert_eq!(ProfileMode::parse(" full "), Ok(ProfileMode::Full));
        let e = ProfileMode::parse("fll").unwrap_err();
        assert!(e.contains("fll"), "{e}");
    }

    #[test]
    fn off_never_times() {
        let p = Profiler::new(ProfileMode::Off);
        for _ in 0..100 {
            let t = p.start();
            assert!(t.is_none());
            p.finish(EventKind::Put, t);
        }
        assert_eq!(p.total_count(), 0);
        assert!(p.report().is_empty());
    }

    #[test]
    fn full_times_everything() {
        let p = Profiler::new(ProfileMode::Full);
        for _ in 0..10 {
            let t = p.start();
            assert!(t.is_some());
            p.finish(EventKind::Put, t);
        }
        let s = p.stats(EventKind::Put);
        assert_eq!(s.count(), 10);
        assert_eq!(p.stats(EventKind::Get).count(), 0);
        let r = p.report();
        assert!(r.contains("wall-clock profile"));
        assert!(r.contains("put"));
    }

    #[test]
    fn sample_times_one_in_period() {
        let p = Profiler::new(ProfileMode::Sample);
        let mut timed = 0;
        let n = SAMPLE_PERIOD * 4;
        for _ in 0..n {
            let t = p.start();
            if t.is_some() {
                timed += 1;
            }
            p.finish(EventKind::Amo, t);
        }
        assert_eq!(timed, 4);
        assert_eq!(p.stats(EventKind::Amo).count(), 4);
    }

    #[test]
    fn mode_switches() {
        let p = Profiler::new(ProfileMode::Off);
        assert_eq!(p.mode(), ProfileMode::Off);
        p.set_mode(ProfileMode::Full);
        assert_eq!(p.mode(), ProfileMode::Full);
        assert!(p.start().is_some());
        p.set_mode(ProfileMode::Off);
        assert!(p.start().is_none());
    }
}
