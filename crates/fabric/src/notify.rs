//! Notified access: per-rank lock-free notification queues.
//!
//! The paper's protocols synchronize in bulk (fence/PSCW epochs) or per
//! peer (lock/flush), but producer-consumer apps really want *per-message*
//! completion signaling: "this put has landed, here is its tag". Notified
//! access — the primitive Quo-Vadis-MPI-RMA identifies as missing from
//! MPI-3 and that RAMC builds memory channels on — attaches a small
//! notification record to a put/AMO; when the operation retires at the
//! target, the record becomes visible in the *target rank's* notification
//! queue, where `wait_notify`/`test_notify` match it by (source, tag).
//!
//! ## The queue
//!
//! One fixed-size MPMC ring per rank ([`NotifyQueue`], Vyukov bounded
//! queue): any peer's endpoint may append concurrently (multi-producer),
//! and the owning rank pops — MPMC rather than MPSC so windows, channels
//! and the soak harness can drain defensively from helper threads. Each
//! cell carries `(tag, source, bytes, stamp)`; the stamp is the virtual
//! completion time of the notified operation, so a consumer that matches a
//! record joins its clock with the producer's completion — notification
//! *implies* data visibility in virtual time, exactly the DMAPP ordered
//! delivery the real foMPI relies on.
//!
//! ## Overflow is backpressure
//!
//! The ring is fixed-size on purpose: a real NIC's notification FIFO is a
//! hardware resource, and overrunning it backpressures the *producer*.
//! [`crate::Endpoint::notify_append`] accounts an overflowed append as an
//! injection stall in the LogGP cost model (scaled by the armed
//! [`crate::FaultPlan`]'s `bp_ns`, so chaos plans stretch it) and retries
//! a bounded number of times before surfacing
//! [`crate::FabricError::Backpressure`] to the caller. Fault draws happen
//! once per append — never inside the retry loop — preserving the
//! bit-determinism contract of [`crate::faults`].
//!
//! Depth comes from `FOMPI_NOTIFY_DEPTH` (default [`DEFAULT_NOTIFY_DEPTH`],
//! rounded up to a power of two); a malformed value is a loud startup
//! error, mirroring `FOMPI_FAULTS`.

use crate::clock::{bits_to_stamp, stamp_to_bits};
// Under `--cfg loom` the ring runs on loom's model-checked atomics so the
// interleaving tests below explore every Acquire/Release schedule. loom is
// NOT a dependency of this workspace: add it locally as a dev-dependency
// (do not commit) and run
// `RUSTFLAGS="--cfg loom" cargo test -p fompi-fabric --release loom_`.
#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Wildcard for [`notify_match`]: matches any source or any tag.
pub const NOTIFY_ANY: u32 = u32::MAX;

/// Default per-rank queue depth (records) when `FOMPI_NOTIFY_DEPTH` is
/// unset. 64 matches the injection-burst op cap: a full burst of notified
/// ops can land without overflow.
pub const DEFAULT_NOTIFY_DEPTH: usize = 64;

/// One notification: a notified put/AMO from `source` carrying `bytes`
/// payload retired at virtual time `stamp`, labelled `tag`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NotifyRecord {
    /// User tag attached at the origin (must not be [`NOTIFY_ANY`]).
    pub tag: u32,
    /// Origin rank.
    pub source: u32,
    /// Payload bytes the notified operation moved.
    pub bytes: u64,
    /// Virtual completion time of the notified operation (origin clock);
    /// consumers join their clock with it on a match.
    pub stamp: f64,
    /// Causal flow id of the notified operation
    /// ([`crate::telemetry::flow_id`]), or 0. Carried so the consumer's
    /// `notify_wait` trace event joins the producer's flow — purely
    /// observational, never affects matching or virtual time.
    pub flow: u64,
}

/// Does a record from `(source, tag)` satisfy a wait for
/// `(want_source, want_tag)`? [`NOTIFY_ANY`] wildcards either side.
#[inline]
pub fn notify_match(want_source: u32, want_tag: u32, source: u32, tag: u32) -> bool {
    (want_source == NOTIFY_ANY || source == want_source)
        && (want_tag == NOTIFY_ANY || tag == want_tag)
}

/// Queue depth from `FOMPI_NOTIFY_DEPTH`. Unset/empty → the default;
/// malformed or zero → a loud panic (a typo'd depth must never silently
/// run at the default, mirroring the `FOMPI_FAULTS` policy).
pub fn depth_from_env() -> usize {
    match std::env::var("FOMPI_NOTIFY_DEPTH") {
        Ok(s) => {
            let s = s.trim().to_string();
            if s.is_empty() {
                return DEFAULT_NOTIFY_DEPTH;
            }
            match s.parse::<usize>() {
                Ok(d) if d >= 1 => d,
                _ => panic!("invalid FOMPI_NOTIFY_DEPTH `{s}`: want an integer >= 1"),
            }
        }
        Err(_) => DEFAULT_NOTIFY_DEPTH,
    }
}

/// One cell of the ring. `seq` is the Vyukov sequence word; the payload
/// words are published before the `seq` release-store and read after the
/// consumer's acquire-load, so they need no ordering of their own.
struct Cell {
    seq: AtomicU64,
    tag_src: AtomicU64,
    bytes: AtomicU64,
    stamp: AtomicU64,
    flow: AtomicU64,
}

/// Fixed-size lock-free MPMC notification ring (Vyukov bounded queue).
///
/// Producers are peer endpoints appending on notified-op retirement;
/// the consumer is normally the owning rank's `wait_notify`/`test_notify`
/// loop. Full is a *normal* condition ([`NotifyQueue::try_push`] returns
/// `false`) — the endpoint turns it into modelled backpressure.
pub struct NotifyQueue {
    cells: Box<[Cell]>,
    mask: u64,
    enqueue_pos: AtomicU64,
    dequeue_pos: AtomicU64,
}

impl NotifyQueue {
    /// A ring holding at least `depth` records (rounded up to a power of
    /// two, minimum 2 — the sequence arithmetic needs the mask).
    pub fn new(depth: usize) -> Self {
        let cap = depth.max(2).next_power_of_two();
        let cells = (0..cap as u64)
            .map(|i| Cell {
                seq: AtomicU64::new(i),
                tag_src: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                stamp: AtomicU64::new(0),
                flow: AtomicU64::new(0),
            })
            .collect();
        NotifyQueue {
            cells,
            mask: cap as u64 - 1,
            enqueue_pos: AtomicU64::new(0),
            dequeue_pos: AtomicU64::new(0),
        }
    }

    /// Records the ring can hold.
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Approximate occupancy (exact when quiescent).
    pub fn len(&self) -> usize {
        let e = self.enqueue_pos.load(Ordering::Relaxed);
        let d = self.dequeue_pos.load(Ordering::Relaxed);
        e.saturating_sub(d) as usize
    }

    /// Is the ring (approximately) empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one record; `false` when the ring is full (the caller
    /// accounts backpressure — see module docs).
    pub fn try_push(&self, rec: NotifyRecord) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[(pos & self.mask) as usize];
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as i64 - pos as i64;
            if dif == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        cell.tag_src
                            .store(((rec.tag as u64) << 32) | rec.source as u64, Ordering::Relaxed);
                        cell.bytes.store(rec.bytes, Ordering::Relaxed);
                        cell.stamp.store(stamp_to_bits(rec.stamp), Ordering::Relaxed);
                        cell.flow.store(rec.flow, Ordering::Relaxed);
                        cell.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(cur) => pos = cur,
                }
            } else if dif < 0 {
                return false; // full
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest record, if any.
    pub fn try_pop(&self) -> Option<NotifyRecord> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[(pos & self.mask) as usize];
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as i64 - (pos + 1) as i64;
            if dif == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let ts = cell.tag_src.load(Ordering::Relaxed);
                        let rec = NotifyRecord {
                            tag: (ts >> 32) as u32,
                            source: ts as u32,
                            bytes: cell.bytes.load(Ordering::Relaxed),
                            stamp: bits_to_stamp(cell.stamp.load(Ordering::Relaxed)),
                            flow: cell.flow.load(Ordering::Relaxed),
                        };
                        cell.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(rec);
                    }
                    Err(cur) => pos = cur,
                }
            } else if dif < 0 {
                return None; // empty
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }
}

impl std::fmt::Debug for NotifyQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NotifyQueue")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

/// Per-rank notification queues, owned by [`crate::Fabric`]. The registry
/// sits behind an `RwLock` only so [`NotifyHub::set_depth`] can swap the
/// rings before traffic starts ([`crate::Fabric::set_notify_depth`], the
/// `Universe` launch path); every hot-path access is a read lock plus the
/// lock-free ring.
pub struct NotifyHub {
    queues: RwLock<Vec<Arc<NotifyQueue>>>,
    depth: AtomicUsize,
}

impl NotifyHub {
    /// Build `p` rings of `depth` records each.
    pub fn new(p: usize, depth: usize) -> Self {
        let queues = (0..p).map(|_| Arc::new(NotifyQueue::new(depth))).collect();
        NotifyHub { queues: RwLock::new(queues), depth: AtomicUsize::new(depth) }
    }

    /// The ring of notifications *destined for* `rank`.
    pub fn queue(&self, rank: u32) -> Arc<NotifyQueue> {
        self.queues.read().expect("notify registry poisoned")[rank as usize].clone()
    }

    /// Configured depth (pre-rounding).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Replace every ring with fresh ones of `depth` records. Intended for
    /// launch-time configuration only: records still queued are dropped.
    pub fn set_depth(&self, depth: usize) {
        let mut q = self.queues.write().expect("notify registry poisoned");
        for slot in q.iter_mut() {
            *slot = Arc::new(NotifyQueue::new(depth));
        }
        self.depth.store(depth, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for NotifyHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NotifyHub").field("depth", &self.depth()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn rec(tag: u32, source: u32, bytes: u64, stamp: f64) -> NotifyRecord {
        NotifyRecord { tag, source, bytes, stamp, flow: tag as u64 + 1 }
    }

    #[test]
    fn fifo_order_and_payload_roundtrip() {
        let q = NotifyQueue::new(8);
        for i in 0..5u32 {
            assert!(q.try_push(rec(i, 100 + i, i as u64 * 8, i as f64 * 10.0)));
        }
        for i in 0..5u32 {
            let r = q.try_pop().expect("record");
            assert_eq!((r.tag, r.source, r.bytes), (i, 100 + i, i as u64 * 8));
            assert_eq!(r.stamp, i as f64 * 10.0);
            assert_eq!(r.flow, i as u64 + 1, "flow id rides the cell");
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn wraparound_reuses_cells() {
        let q = NotifyQueue::new(4);
        for round in 0..10u32 {
            for i in 0..4u32 {
                assert!(q.try_push(rec(round * 4 + i, 0, 0, 0.0)));
            }
            assert!(!q.try_push(rec(999, 0, 0, 0.0)), "full ring must refuse");
            for i in 0..4u32 {
                assert_eq!(q.try_pop().unwrap().tag, round * 4 + i);
            }
        }
    }

    #[test]
    fn full_ring_refuses_until_drained() {
        let q = NotifyQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.try_push(rec(1, 0, 0, 0.0)));
        assert!(q.try_push(rec(2, 0, 0, 0.0)));
        assert!(!q.try_push(rec(3, 0, 0, 0.0)));
        assert_eq!(q.try_pop().unwrap().tag, 1);
        assert!(q.try_push(rec(3, 0, 0, 0.0)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn depth_rounds_up_to_power_of_two() {
        assert_eq!(NotifyQueue::new(0).capacity(), 2);
        assert_eq!(NotifyQueue::new(1).capacity(), 2);
        assert_eq!(NotifyQueue::new(5).capacity(), 8);
        assert_eq!(NotifyQueue::new(64).capacity(), 64);
    }

    #[test]
    fn match_wildcards() {
        assert!(notify_match(NOTIFY_ANY, NOTIFY_ANY, 3, 7));
        assert!(notify_match(3, NOTIFY_ANY, 3, 7));
        assert!(notify_match(NOTIFY_ANY, 7, 3, 7));
        assert!(notify_match(3, 7, 3, 7));
        assert!(!notify_match(4, NOTIFY_ANY, 3, 7));
        assert!(!notify_match(NOTIFY_ANY, 8, 3, 7));
    }

    #[test]
    fn mpmc_storm_loses_nothing() {
        // 4 producers × 1000 records through a 16-cell ring, 2 consumers.
        // Every record must come out exactly once.
        let q = Arc::new(NotifyQueue::new(16));
        let popped = Arc::new(AtomicU32::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        const PER: u32 = 1000;
        const PRODUCERS: u32 = 4;
        std::thread::scope(|s| {
            for pr in 0..PRODUCERS {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..PER {
                        let tag = pr * PER + i;
                        while !q.try_push(rec(tag, pr, tag as u64, 0.0)) {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let q = Arc::clone(&q);
                let popped = Arc::clone(&popped);
                let sum = Arc::clone(&sum);
                s.spawn(move || loop {
                    if let Some(r) = q.try_pop() {
                        sum.fetch_add(r.tag as u64, Ordering::Relaxed);
                        if popped.fetch_add(1, Ordering::Relaxed) + 1 == PRODUCERS * PER {
                            return;
                        }
                    } else if popped.load(Ordering::Relaxed) >= PRODUCERS * PER {
                        return;
                    } else {
                        std::thread::yield_now();
                    }
                });
            }
        });
        let n = (PRODUCERS * PER) as u64;
        assert_eq!(popped.load(Ordering::Relaxed) as u64, n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn hub_set_depth_swaps_rings() {
        let hub = NotifyHub::new(3, 4);
        assert_eq!(hub.queue(1).capacity(), 4);
        hub.queue(1).try_push(rec(9, 0, 0, 0.0));
        hub.set_depth(32);
        assert_eq!(hub.depth(), 32);
        assert_eq!(hub.queue(1).capacity(), 32);
        assert_eq!(hub.queue(1).try_pop(), None, "set_depth drops queued records");
    }

    #[test]
    fn stamp_survives_bit_transport() {
        let q = NotifyQueue::new(2);
        for &s in &[0.0, 416.0, 1234.5678, 9.9e12] {
            assert!(q.try_push(rec(0, 0, 0, s)));
            assert_eq!(q.try_pop().unwrap().stamp.to_bits(), s.to_bits());
        }
    }

    /// Regression pin for the Vyukov cell protocol's Release/Acquire
    /// pairing on `seq`: the payload words are Relaxed on purpose, so
    /// every record popped under producer contention must still carry the
    /// complete payload its producer published before the `seq`
    /// release-store. A weakened ordering surfaces here as a stale or
    /// zero field on a reused cell.
    #[test]
    fn payload_publication_is_release_acquire_ordered() {
        let q = Arc::new(NotifyQueue::new(4));
        const PER: u32 = 500;
        const PRODUCERS: u32 = 3;
        std::thread::scope(|s| {
            for pr in 0..PRODUCERS {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..PER {
                        let tag = pr * PER + i + 1;
                        let r = rec(tag, tag ^ 0xA5A5, tag as u64 * 3, tag as f64);
                        while !q.try_push(r) {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let q = Arc::clone(&q);
            s.spawn(move || {
                let mut seen = 0;
                while seen < PRODUCERS * PER {
                    if let Some(r) = q.try_pop() {
                        assert_eq!(r.source, r.tag ^ 0xA5A5, "stale source on reused cell");
                        assert_eq!(r.bytes, r.tag as u64 * 3, "stale bytes on reused cell");
                        assert_eq!(r.stamp.to_bits(), (r.tag as f64).to_bits(), "stale stamp");
                        seen += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
    }
}

/// Exhaustive interleaving checks of the ring under loom (see the import
/// note at the top of the module for how to run them).
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use loom::thread;
    use std::sync::Arc;

    fn rec(tag: u32) -> NotifyRecord {
        NotifyRecord {
            tag,
            source: tag ^ 0xA5,
            bytes: tag as u64 * 3,
            stamp: tag as f64,
            flow: tag as u64,
        }
    }

    fn coherent(r: &NotifyRecord) {
        assert_eq!(r.source, r.tag ^ 0xA5);
        assert_eq!(r.bytes, r.tag as u64 * 3);
        assert_eq!(r.stamp.to_bits(), (r.tag as f64).to_bits());
    }

    /// Two concurrent producers into a 2-cell ring: every interleaving
    /// must land both records with coherent payloads, drained in the
    /// order the enqueue slots were claimed.
    #[test]
    fn loom_two_producers_land_both_records() {
        loom::model(|| {
            let q = Arc::new(NotifyQueue::new(2));
            let p1 = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.try_push(rec(1)))
            };
            let p2 = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.try_push(rec(2)))
            };
            assert!(p1.join().unwrap(), "capacity-2 ring refused the first record");
            assert!(p2.join().unwrap(), "capacity-2 ring refused the second record");
            let mut tags = Vec::new();
            while let Some(r) = q.try_pop() {
                coherent(&r);
                tags.push(r.tag);
            }
            tags.sort_unstable();
            assert_eq!(tags, vec![1, 2]);
        });
    }

    /// Overflow racing a concurrent pop: the push may land (the pop freed
    /// a cell first) or be refused (full) — either way nothing is lost,
    /// duplicated, or torn, and FIFO order holds.
    #[test]
    fn loom_overflow_vs_pop_conserves_records() {
        loom::model(|| {
            let q = Arc::new(NotifyQueue::new(2));
            assert!(q.try_push(rec(1)));
            assert!(q.try_push(rec(2)));
            let p = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.try_push(rec(3)))
            };
            let c = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.try_pop())
            };
            let pushed = p.join().unwrap();
            let popped = c.join().unwrap();
            if let Some(r) = &popped {
                coherent(r);
                assert_eq!(r.tag, 1, "pop must take the oldest record");
            }
            let mut all: Vec<u32> = popped.into_iter().map(|r| r.tag).collect();
            while let Some(r) = q.try_pop() {
                coherent(&r);
                all.push(r.tag);
            }
            let want: Vec<u32> = if pushed { vec![1, 2, 3] } else { vec![1, 2] };
            assert_eq!(all, want);
        });
    }
}
