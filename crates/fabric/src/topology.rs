//! Rank → node mapping.
//!
//! Blue Waters packs 32 ranks per XE6 node; whether a peer is on the same
//! node decides the transport (XPMEM vs DMAPP) and therefore every
//! intra-/inter-node crossover in the paper's figures. Ranks are laid out
//! block-wise (ranks `[i*node_size, (i+1)*node_size)` share node `i`), the
//! default MPICH mapping.

/// Block-wise rank-to-node topology.
#[derive(Debug, Clone)]
pub struct Topology {
    p: usize,
    node_size: usize,
}

impl Topology {
    /// `p` ranks, `node_size` ranks per node (the last node may be ragged).
    pub fn new(p: usize, node_size: usize) -> Self {
        assert!(node_size > 0, "node_size must be positive");
        Self { p, node_size }
    }

    /// Total ranks.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// Ranks per node.
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.p.div_ceil(self.node_size)
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: u32) -> u32 {
        (rank as usize / self.node_size) as u32
    }

    /// Whether two ranks share a node.
    pub fn same_node(&self, a: u32, b: u32) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Ranks co-located with `rank` (including itself).
    pub fn node_ranks(&self, rank: u32) -> std::ops::Range<u32> {
        let node = rank as usize / self.node_size;
        let lo = node * self.node_size;
        let hi = ((node + 1) * self.node_size).min(self.p);
        lo as u32..hi as u32
    }

    /// True if all ranks fit on one node (job is XPMEM-only).
    pub fn single_node(&self) -> bool {
        self.p <= self.node_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping() {
        let t = Topology::new(10, 4);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(9), 2);
        assert!(t.same_node(4, 7));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    fn node_ranks_ragged_tail() {
        let t = Topology::new(10, 4);
        assert_eq!(t.node_ranks(9), 8..10);
        assert_eq!(t.node_ranks(1), 0..4);
    }

    #[test]
    fn single_node_detection() {
        assert!(Topology::new(4, 8).single_node());
        assert!(!Topology::new(9, 8).single_node());
    }
}
