//! Randomized property tests for the segment memory model (seeded in-repo
//! PRNG; no external test deps): arbitrary interleavings of reads/writes/
//! AMOs must never corrupt neighbouring bytes, and the byte-level semantics
//! must match a plain `Vec<u8>` model.

use fompi_fabric::rng::Rng;
use fompi_fabric::{AmoOp, Segment};

fn amo_of(tag: u8) -> AmoOp {
    match tag {
        0 => AmoOp::Add,
        1 => AmoOp::And,
        2 => AmoOp::Or,
        3 => AmoOp::Xor,
        4 => AmoOp::Swap,
        5 => AmoOp::Cas,
        _ => AmoOp::Fetch,
    }
}

/// Sequential segment ops behave exactly like the same ops on a Vec.
#[test]
fn segment_matches_vec_model() {
    const SEG_LEN: usize = 256;
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x5E6_0000 + case);
        let seg = Segment::new(SEG_LEN);
        let mut model = vec![0u8; SEG_LEN];
        let n_ops = rng.range(1, 50);
        for _ in 0..n_ops {
            match rng.next_below(4) {
                0 => {
                    let off = rng.range(0, SEG_LEN);
                    let mut data = vec![0u8; rng.range(0, 64).min(SEG_LEN - off)];
                    rng.fill_bytes(&mut data);
                    seg.write(off, &data);
                    model[off..off + data.len()].copy_from_slice(&data);
                }
                1 => {
                    let off = rng.range(0, SEG_LEN);
                    let len = rng.range(0, 64).min(SEG_LEN - off);
                    let val = rng.next_u64() as u8;
                    seg.fill(off, len, val);
                    model[off..off + len].iter_mut().for_each(|b| *b = val);
                }
                2 => {
                    let off = rng.range(0, SEG_LEN - 8);
                    let v = rng.next_u64();
                    seg.write_u64(off, v);
                    model[off..off + 8].copy_from_slice(&v.to_le_bytes());
                }
                _ => {
                    let word = rng.range(0, SEG_LEN / 8);
                    let op = amo_of(rng.next_below(7) as u8);
                    let operand = rng.next_u64();
                    let compare = rng.next_u64();
                    let off = word * 8;
                    let old_model = u64::from_le_bytes(model[off..off + 8].try_into().unwrap());
                    let old_seg = seg.amo(off, op, operand, compare);
                    assert_eq!(old_seg, old_model, "case {case}");
                    let new = op.apply(old_model, operand, compare);
                    model[off..off + 8].copy_from_slice(&new.to_le_bytes());
                }
            }
        }
        let mut out = vec![0u8; SEG_LEN];
        seg.read(0, &mut out);
        assert_eq!(out, model, "case {case}");
    }
}

/// Unaligned reads always reflect the latest writes, regardless of the
/// alignment of either.
#[test]
fn unaligned_read_after_write() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0xA11_6000 + case);
        let off = rng.range(0, 200);
        let mut data = vec![0u8; rng.range(1, 56)];
        rng.fill_bytes(&mut data);
        let seg = Segment::new(256);
        seg.write(off, &data);
        let mut out = vec![0u8; data.len()];
        seg.read(off, &mut out);
        assert_eq!(out, data, "case {case} off {off}");
    }
}

/// AMO application is a pure function consistent with two's-complement
/// arithmetic.
#[test]
fn amo_apply_is_pure() {
    for case in 0..512u64 {
        let mut rng = Rng::seed_from_u64(0xAB0_0000 + case);
        let old = rng.next_u64();
        let operand = rng.next_u64();
        let compare = rng.next_u64();
        let tag = rng.next_below(7) as u8;
        let op = amo_of(tag);
        let a = op.apply(old, operand, compare);
        let b = op.apply(old, operand, compare);
        assert_eq!(a, b);
        if tag == 0 {
            assert_eq!(a, old.wrapping_add(operand));
        }
        if tag == 5 && old != compare {
            assert_eq!(a, old, "failed CAS must leave the value alone");
        }
    }
}

/// Concurrent atomic adds from many threads always sum exactly, whatever
/// the thread/iteration split.
#[test]
fn concurrent_adds_sum_exactly() {
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0xADD_5000 + case);
        let threads = rng.range(1, 6);
        let per = rng.range(1, 200);
        let seg = Segment::new(8);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per {
                        seg.amo(0, AmoOp::Add, 1, 0);
                    }
                });
            }
        });
        assert_eq!(seg.read_u64(0), (threads * per) as u64, "case {case}");
    }
}
