//! Property tests for the segment memory model: arbitrary interleavings of
//! reads/writes/AMOs must never corrupt neighbouring bytes, and the
//! byte-level semantics must match a plain `Vec<u8>` model.

use fompi_fabric::{AmoOp, Segment};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write { off: usize, data: Vec<u8> },
    Fill { off: usize, len: usize, val: u8 },
    WriteU64 { off: usize, v: u64 },
    Amo { word: usize, op: u8, operand: u64, compare: u64 },
}

fn op_strategy(seg_len: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..seg_len, proptest::collection::vec(any::<u8>(), 0..64)).prop_map(move |(off, data)| {
            let off = off.min(seg_len - 1);
            let len = data.len().min(seg_len - off);
            Op::Write { off, data: data[..len].to_vec() }
        }),
        (0..seg_len, 0..64usize, any::<u8>()).prop_map(move |(off, len, val)| {
            let off = off.min(seg_len - 1);
            Op::Fill { off, len: len.min(seg_len - off), val }
        }),
        (0..seg_len.saturating_sub(8), any::<u64>())
            .prop_map(|(off, v)| Op::WriteU64 { off, v }),
        (0..seg_len / 8, 0u8..7, any::<u64>(), any::<u64>()).prop_map(
            |(word, op, operand, compare)| Op::Amo { word, op, operand, compare }
        ),
    ]
}

fn amo_of(tag: u8) -> AmoOp {
    match tag {
        0 => AmoOp::Add,
        1 => AmoOp::And,
        2 => AmoOp::Or,
        3 => AmoOp::Xor,
        4 => AmoOp::Swap,
        5 => AmoOp::Cas,
        _ => AmoOp::Fetch,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sequential segment ops behave exactly like the same ops on a Vec.
    #[test]
    fn segment_matches_vec_model(ops in proptest::collection::vec(op_strategy(256), 1..50)) {
        let seg = Segment::new(256);
        let mut model = vec![0u8; 256];
        for op in &ops {
            match op {
                Op::Write { off, data } => {
                    seg.write(*off, data);
                    model[*off..*off + data.len()].copy_from_slice(data);
                }
                Op::Fill { off, len, val } => {
                    seg.fill(*off, *len, *val);
                    model[*off..*off + *len].iter_mut().for_each(|b| *b = *val);
                }
                Op::WriteU64 { off, v } => {
                    seg.write_u64(*off, *v);
                    model[*off..*off + 8].copy_from_slice(&v.to_le_bytes());
                }
                Op::Amo { word, op, operand, compare } => {
                    let off = word * 8;
                    let old_model = u64::from_le_bytes(model[off..off + 8].try_into().unwrap());
                    let old_seg = seg.amo(off, amo_of(*op), *operand, *compare);
                    prop_assert_eq!(old_seg, old_model);
                    let new = amo_of(*op).apply(old_model, *operand, *compare);
                    model[off..off + 8].copy_from_slice(&new.to_le_bytes());
                }
            }
        }
        let mut out = vec![0u8; 256];
        seg.read(0, &mut out);
        prop_assert_eq!(out, model);
    }

    /// Unaligned reads always reflect the latest writes, regardless of
    /// alignment of either.
    #[test]
    fn unaligned_read_after_write(off in 0usize..200, data in proptest::collection::vec(any::<u8>(), 1..56)) {
        let seg = Segment::new(256);
        seg.write(off, &data);
        let mut out = vec![0u8; data.len()];
        seg.read(off, &mut out);
        prop_assert_eq!(out, data);
    }

    /// AMO application is a pure function consistent with two's-complement
    /// arithmetic.
    #[test]
    fn amo_apply_is_pure(old in any::<u64>(), operand in any::<u64>(), compare in any::<u64>(), tag in 0u8..7) {
        let op = amo_of(tag);
        let a = op.apply(old, operand, compare);
        let b = op.apply(old, operand, compare);
        prop_assert_eq!(a, b);
        if tag == 0 {
            prop_assert_eq!(a, old.wrapping_add(operand));
        }
        if tag == 5 && old != compare {
            prop_assert_eq!(a, old); // failed CAS leaves the value alone
        }
    }

    /// Concurrent atomic adds from many threads always sum exactly,
    /// whatever the thread/iteration split.
    #[test]
    fn concurrent_adds_sum_exactly(threads in 1usize..6, per in 1usize..200) {
        let seg = Segment::new(8);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per {
                        seg.amo(0, AmoOp::Add, 1, 0);
                    }
                });
            }
        });
        prop_assert_eq!(seg.read_u64(0), (threads * per) as u64);
    }
}
