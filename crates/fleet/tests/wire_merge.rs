//! The fleet's core soundness claim, proved end to end: merging agent
//! metrics *through the wire form* (JSON line → parse → bucket merge)
//! yields exactly what an in-process [`HistSnapshot::merge`] of the same
//! snapshots yields. If the JSON round-trip lost or coarsened buckets,
//! the fleet summary's tails would silently drift from the truth.

use fompi_fabric::telemetry::HistSnapshot;
use fompi_fabric::{metrics, CostModel, Endpoint, Fabric, FaultPlan, Segment};
use fompi_fleet::{merge_classes, parse_agent_json, ConfigResult, Usage};

/// Drive a deterministic single-rank workload on a fresh fabric and
/// return its armed metrics snapshot. `reps` scales the op mix so two
/// calls produce *different* distributions worth merging.
fn snapshot(reps: usize) -> metrics::MetricsSnapshot {
    let fabric = Fabric::with_config(2, 1, CostModel::default(), None, Some(FaultPlan::disabled()));
    fabric.set_metrics(true);
    let ep = Endpoint::new(fabric.clone(), 0);
    let key = fabric.register(1, Segment::new(1 << 16));
    let mut buf = [0u8; 512];
    for i in 0..reps {
        let size = [8usize, 64, 512, 4096][i % 4];
        ep.put(key, 0, &vec![i as u8; size]).unwrap();
        if i % 3 == 0 {
            ep.get(key, 0, &mut buf).unwrap();
        }
    }
    ep.flush_target(1);
    metrics::snapshot(&fabric)
}

fn to_config(agent: &str, snap: &metrics::MetricsSnapshot) -> ConfigResult {
    let parsed = parse_agent_json(agent, &snap.to_json_line())
        .expect("the fabric's own JSON line must parse as an agent line");
    ConfigResult {
        agent: agent.into(),
        backend: "rma".into(),
        ranks: 2,
        node_size: 1,
        seed: 1,
        metrics: parsed,
        usage: Usage::default(),
        stable: true,
    }
}

#[test]
fn wire_merge_equals_in_process_merge() {
    let (a, b) = (snapshot(40), snapshot(17));

    // Through the wire: serialize, parse back, merge buckets.
    let merged = merge_classes(&[to_config("agent-a", &a), to_config("agent-b", &b)]);

    for class in &merged {
        // In process: merge the original snapshots' histograms directly.
        let find = |s: &metrics::MetricsSnapshot| {
            s.classes.iter().find(|c| c.kind.name() == class.class).cloned()
        };
        let mut lat = HistSnapshot::new();
        let (mut count, mut bytes, mut ns) = (0u64, 0u64, 0u64);
        for c in [find(&a), find(&b)].into_iter().flatten() {
            lat.merge(&c.lat);
            count += c.count;
            bytes += c.bytes;
            ns += c.total_ns;
        }
        assert_eq!(class.count, count, "{}: count drifted through the wire", class.class);
        assert_eq!(class.bytes, bytes, "{}: bytes drifted through the wire", class.class);
        assert_eq!(class.virtual_ns, ns, "{}: virtual_ns drifted through the wire", class.class);
        assert_eq!(class.lat, lat, "{}: bucket-exact histogram mismatch", class.class);
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(class.lat.quantile_hi(q), lat.quantile_hi(q));
        }
    }

    // The workloads differ, so the merge is a real union, not a no-op.
    let put = merged.iter().find(|c| c.class == "put").expect("put class present");
    assert_eq!(put.count, 57);
}
