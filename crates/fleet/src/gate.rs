//! The regression-gate comparison shared by `perfgate` and `fleet --gate`.
//!
//! Both gates do the same thing — compare a flat `metric → f64` map
//! against a checked-in baseline with per-metric tolerances — so the
//! logic lives here once. The two binaries differ only in where the maps
//! come from (perfgate's flat JSON vs the fleet summary flattened by
//! [`crate::merge::flatten_summary`]) and which tolerance function they
//! pass.
//!
//! ## Exit-code contract
//!
//! CI needs to distinguish "a metric regressed" (someone slowed a
//! protocol down) from "the baseline is missing or unreadable" (someone
//! forgot to check it in, or the format drifted) — the fixes are
//! different people's jobs. Both gates exit with:
//!
//! * `0` — all metrics within tolerance;
//! * [`EXIT_REGRESSED`] (2) — at least one metric regressed or vanished;
//! * [`EXIT_BASELINE`] (3) — the baseline file is missing, unreadable, or
//!   parsed to zero metrics;
//! * `1` — any other error (bad CLI, agent failure, …).

use std::collections::BTreeMap;

/// Exit code: a gated metric regressed beyond tolerance (or disappeared).
pub const EXIT_REGRESSED: u8 = 2;
/// Exit code: baseline missing, unreadable, or unparseable.
pub const EXIT_BASELINE: u8 = 3;

/// One metric that failed the gate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateFailure {
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Current value (`None` when the metric vanished from this build).
    pub now: Option<f64>,
}

impl GateFailure {
    /// Human rendering: `name (+12.34%)` or `name (missing)`.
    pub fn describe(&self) -> String {
        match self.now {
            Some(now) if self.base != 0.0 => {
                format!("{} ({:+.2}%)", self.metric, (now / self.base - 1.0) * 100.0)
            }
            Some(now) => format!("{} ({} from 0)", self.metric, now),
            None => format!("{} (missing)", self.metric),
        }
    }
}

/// Outcome of one gate comparison.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Metrics beyond tolerance or missing from the current build.
    pub failures: Vec<GateFailure>,
    /// Metrics that *improved* beyond tolerance (baseline is stale).
    pub improved: Vec<String>,
    /// Current metrics absent from the baseline (not gated yet).
    pub new_metrics: Vec<String>,
    /// Number of baseline metrics compared.
    pub checked: usize,
}

impl GateReport {
    /// Did every gated metric stay within tolerance?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line failure summary naming every offending metric.
    pub fn failure_summary(&self) -> String {
        self.failures.iter().map(GateFailure::describe).collect::<Vec<_>>().join(", ")
    }
}

/// Compare `current` against `baseline`. `tolerance` maps a metric name
/// to its allowed relative slack (0.01 = 1%); exact-match metrics return
/// 0.0. Regressions are values *above* `base * (1 + tol)` — these are
/// latency/cost metrics, where smaller is better — plus baseline metrics
/// missing from `current`.
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    tolerance: &dyn Fn(&str) -> f64,
) -> GateReport {
    let mut report = GateReport { checked: baseline.len(), ..GateReport::default() };
    for (metric, &base) in baseline {
        let tol = tolerance(metric);
        match current.get(metric) {
            None => report.failures.push(GateFailure { metric: metric.clone(), base, now: None }),
            Some(&now) => {
                // The epsilon forgives f64 Display round-trips, never a
                // real change.
                if now > base * (1.0 + tol) + 1e-9 {
                    report.failures.push(GateFailure {
                        metric: metric.clone(),
                        base,
                        now: Some(now),
                    });
                } else if now < base * (1.0 - tol) - 1e-9 {
                    report.improved.push(metric.clone());
                }
            }
        }
    }
    for metric in current.keys() {
        if !baseline.contains_key(metric) {
            report.new_metrics.push(metric.clone());
        }
    }
    report
}

/// Parse the flat `"key": number` JSON perfgate writes (one metric per
/// line). Returns an empty map on anything else, which callers must treat
/// as an unparseable baseline ([`EXIT_BASELINE`]).
pub fn parse_flat_json(text: &str) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((key, val)) = rest.split_once("\":") else { continue };
        if let Ok(v) = val.trim().parse::<f64>() {
            m.insert(key.to_string(), v);
        }
    }
    m
}

/// The fleet's per-metric tolerance: `virtual_ns` totals get 1% (they
/// accumulate f64 formatting of many ops), everything else — op counts,
/// byte counts, and the log2-bucket quantiles, all integers — must match
/// exactly. A quantile moving at all means the distribution crossed a
/// power-of-two bucket boundary: always a genuine protocol change.
pub fn fleet_tolerance(metric: &str) -> f64 {
    if metric.ends_with("/virtual_ns") {
        0.01
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn within_tolerance_passes_and_reports_counts() {
        let base = m(&[("a/virtual_ns", 100.0), ("a/count", 5.0)]);
        let cur = m(&[("a/virtual_ns", 100.5), ("a/count", 5.0), ("b/count", 1.0)]);
        let r = compare(&base, &cur, &fleet_tolerance);
        assert!(r.passed(), "{:?}", r.failures);
        assert_eq!(r.checked, 2);
        assert_eq!(r.new_metrics, vec!["b/count"]);
    }

    #[test]
    fn regression_and_missing_both_fail_with_names() {
        let base = m(&[("a/virtual_ns", 100.0), ("gone/count", 5.0)]);
        let cur = m(&[("a/virtual_ns", 110.0)]);
        let r = compare(&base, &cur, &fleet_tolerance);
        assert!(!r.passed());
        let s = r.failure_summary();
        assert!(s.contains("a/virtual_ns (+10.00%)"), "{s}");
        assert!(s.contains("gone/count (missing)"), "{s}");
    }

    #[test]
    fn exact_metrics_fail_on_any_change_but_not_on_round_trip() {
        let base = m(&[("a/count", 5.0), ("a/p99", 2048.0)]);
        let drift = m(&[("a/count", 6.0), ("a/p99", 4096.0)]);
        assert_eq!(compare(&base, &drift, &fleet_tolerance).failures.len(), 2);
        let same = m(&[("a/count", 5.0 + 1e-12), ("a/p99", 2048.0)]);
        assert!(compare(&base, &same, &fleet_tolerance).passed());
    }

    #[test]
    fn improvements_pass_but_are_flagged() {
        let base = m(&[("a/virtual_ns", 100.0)]);
        let cur = m(&[("a/virtual_ns", 80.0)]);
        let r = compare(&base, &cur, &fleet_tolerance);
        assert!(r.passed());
        assert_eq!(r.improved, vec!["a/virtual_ns"]);
    }

    #[test]
    fn flat_json_round_trips_perfgate_format() {
        let text = "{\n  \"put_small_8_ns\": 1200.5,\n  \"fence_p2_ns\": 3000\n}\n";
        let parsed = parse_flat_json(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["put_small_8_ns"], 1200.5);
        assert!(parse_flat_json("not json at all").is_empty());
    }

    #[test]
    fn zero_baseline_growth_is_a_regression() {
        let base = m(&[("a/count", 0.0)]);
        let cur = m(&[("a/count", 3.0)]);
        let r = compare(&base, &cur, &fleet_tolerance);
        assert!(!r.passed());
        assert!(r.failure_summary().contains("3 from 0"), "{}", r.failure_summary());
    }
}
