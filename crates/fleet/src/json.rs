//! A minimal JSON reader for the fleet's own wire formats.
//!
//! The workspace is dependency-free by design, so the orchestrator parses
//! agent metric lines (`fabric::metrics::MetricsSnapshot::to_json_line`)
//! and fleet summaries with this ~150-line recursive-descent reader
//! instead of serde. It accepts exactly the JSON the repo's tools emit:
//! objects, arrays, strings with the standard escapes, f64 numbers,
//! `true`/`false`/`null`. Object key order is preserved so re-rendering
//! stays deterministic.

/// A parsed JSON value. Numbers are kept as `f64`; every integer the
/// fleet's formats carry (bucket counts, virtual-ns totals) fits in the
/// 53-bit mantissa.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` (must be a non-negative integral number).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse `text` as one JSON value (trailing whitespace allowed, trailing
/// garbage rejected). Errors carry a byte offset and a short reason.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Json::Str(string(b, pos)?)),
        Some(b't') => literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Json::Null),
        Some(_) => number(b, pos),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 number".to_string())?;
    s.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {s:?} at byte {start}"))
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        *pos += 4;
                        // Surrogates never appear in the fleet's formats;
                        // map them to the replacement character.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through unchanged.
                let ch_len = utf8_len(c);
                let chunk = b.get(*pos..*pos + ch_len).ok_or("truncated utf8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad utf8".to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        members.push((key, value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(b[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_metrics_line_shape() {
        let j = parse(
            r#"{"ranks":2,"counters":{"puts":3},"classes":[{"class":"put","count":3,"lat":[[5,2],[7,1]]}],"dropped":0}"#,
        )
        .unwrap();
        assert_eq!(j.get("ranks").unwrap().as_u64(), Some(2));
        let classes = j.get("classes").unwrap().as_arr().unwrap();
        assert_eq!(classes[0].get("class").unwrap().as_str(), Some("put"));
        let lat = classes[0].get("lat").unwrap().as_arr().unwrap();
        assert_eq!(lat[1].as_arr().unwrap()[0].as_u64(), Some(7));
    }

    #[test]
    fn strings_decode_escapes() {
        let j = parse(r#"{"k":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(j.get("k").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn numbers_and_literals() {
        let j = parse(r#"[0, -1.5, 2e3, true, false, null]"#).unwrap();
        let a = j.as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(0));
        assert_eq!(a[1].as_f64(), Some(-1.5));
        assert_eq!(a[2].as_f64(), Some(2000.0));
        assert_eq!(a[3], Json::Bool(true));
        assert_eq!(a[4], Json::Bool(false));
        assert_eq!(a[5], Json::Null);
        assert_eq!(a[1].as_u64(), None, "negative/fractional numbers are not u64");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "{\"a\":1} x", "nul", "\"open"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn preserves_object_key_order() {
        let j = parse(r#"{"z":1,"a":2}"#).unwrap();
        match j {
            Json::Obj(m) => {
                assert_eq!(m[0].0, "z");
                assert_eq!(m[1].0, "a");
            }
            _ => panic!("expected object"),
        }
    }
}
