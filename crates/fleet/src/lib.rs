//! # fompi-fleet — process-based cross-backend bench orchestration
//!
//! Every bench in this repo used to run in-process inside one binary;
//! nothing guarded the story *across process boundaries*: spawn the
//! release binaries the way a user would, sweep rank counts and backends
//! (RMA vs msg-channel vs pgas-style paths) on fixed seeds, and track the
//! merged tail. This crate is that orchestration layer, the WIND-style
//! harness architecture from the paper's measurement lineage:
//!
//! * [`agent`] — the registry: agent name → argv template, expanded per
//!   sweep point, plus the parser for each agent's single-line JSON
//!   metrics output ([`fompi_fabric::metrics`]'s wire form); every parse
//!   error names the offending agent.
//! * [`procstat`] — spawning and *wall-clock* accounting: elapsed time,
//!   CPU seconds and peak RSS per agent from `/proc`, with a kill-switch
//!   timeout so a hung agent fails the sweep instead of wedging CI.
//! * [`merge`] — folding agent snapshots into the fleet summary:
//!   per-configuration p50/p99/p999 plus exact fleet-wide distributions
//!   (histogram merge is associative, so the merged tail is the true
//!   union, not an average of quantiles). The summary is byte-stable and
//!   CI byte-diffs it.
//! * [`gate`] — the regression comparison shared with `perfgate`:
//!   per-metric tolerances and the exit-code contract (0 pass, 2 metric
//!   regressed, 3 baseline missing/unparseable).
//! * [`json`] — the dependency-free JSON reader the above are built on.
//!
//! The `fleet` binary in `fompi-bench` wires these together; see
//! EXPERIMENTS.md § "Fleet sweeps".

pub mod agent;
pub mod gate;
pub mod json;
pub mod merge;
pub mod procstat;

pub use agent::{expand_argv, expand_template, parse_agent_json, AgentMetrics, AgentSpec};
pub use gate::{
    compare, fleet_tolerance, parse_flat_json, GateReport, EXIT_BASELINE, EXIT_REGRESSED,
};
pub use merge::{flatten_summary, merge_classes, render_summary, render_table, ConfigResult};
pub use procstat::{run_agent, AgentRun, Usage};
