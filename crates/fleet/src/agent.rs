//! The agent registry: which binaries the fleet can spawn, and how.
//!
//! An *agent* is a release bench binary that, when invoked with its
//! registered argv, prints exactly one line of JSON metrics to stdout —
//! the [`fompi_fabric::metrics`] single-line form. The registry maps an
//! agent name to an argv *template*; placeholders (`{ranks}`,
//! `{node_size}`, `{seed}`, `{backend}`) are expanded per sweep point, so
//! one registry entry covers a whole (ranks × node_size) sweep grid.

use crate::json::{parse, Json};
use fompi_fabric::telemetry::HistSnapshot;
use std::collections::BTreeMap;

/// One registered agent: a binary plus its argv template.
#[derive(Debug, Clone)]
pub struct AgentSpec {
    /// Registry name (unique; names the agent in errors and tables).
    pub name: &'static str,
    /// Binary file name, resolved relative to the fleet's `--bin-dir`.
    pub bin: &'static str,
    /// Argv template; each element may contain `{placeholder}`s.
    pub args: &'static [&'static str],
    /// Backend this agent exercises (`rma`, `msg`, `pgas`, `txn`).
    pub backend: &'static str,
    /// Rank counts to sweep. Fixed-config agents list exactly one.
    pub ranks: &'static [usize],
    /// Node sizes (ranks per simulated node) to sweep, crossed with
    /// `ranks`. `1` is all-inter-node; larger values route part of the
    /// traffic through the XPMEM fast path. Agents whose argv template
    /// has no `{node_size}` placeholder list exactly `&[1]`.
    pub node_sizes: &'static [usize],
    /// Whether the agent's metrics are schedule-independent (byte-stable
    /// for a fixed seed). Unstable agents still run in every sweep and
    /// appear in the wall-clock table, but their volatile numbers are
    /// kept out of the byte-diffed summary JSON.
    pub stable: bool,
}

/// Expand `{key}` placeholders in one argv template element. Unknown
/// placeholders are an error: a typo in the registry must fail loudly, not
/// ship a literal `{rnaks}` to the agent.
pub fn expand_template(tmpl: &str, vars: &BTreeMap<&str, String>) -> Result<String, String> {
    let mut out = String::with_capacity(tmpl.len());
    let mut rest = tmpl;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let after = &rest[open + 1..];
        let Some(close) = after.find('}') else {
            return Err(format!("unterminated placeholder in template element {tmpl:?}"));
        };
        let key = &after[..close];
        match vars.get(key) {
            Some(v) => out.push_str(v),
            None => {
                return Err(format!("unknown placeholder {{{key}}} in template element {tmpl:?}"))
            }
        }
        rest = &after[close + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Expand a whole argv template for one sweep point.
pub fn expand_argv(
    spec: &AgentSpec,
    ranks: usize,
    node_size: usize,
    seed: u64,
) -> Result<Vec<String>, String> {
    let mut vars: BTreeMap<&str, String> = BTreeMap::new();
    vars.insert("ranks", ranks.to_string());
    vars.insert("node_size", node_size.to_string());
    vars.insert("seed", seed.to_string());
    vars.insert("backend", spec.backend.to_string());
    spec.args.iter().map(|a| expand_template(a, &vars)).collect()
}

/// One op class parsed from an agent's metrics line.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentClass {
    /// Class name (`put`, `fence`, `txn_commit`, …).
    pub class: String,
    /// Operations recorded.
    pub count: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Total virtual ns.
    pub virtual_ns: u64,
    /// Merge-ready latency distribution (raw log2 buckets).
    pub lat: HistSnapshot,
}

/// Everything the fleet keeps from one agent's JSON metrics line.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentMetrics {
    /// Ranks the agent simulated.
    pub ranks: u64,
    /// Global fabric counters, in the agent's key order.
    pub counters: Vec<(String, u64)>,
    /// Per-class aggregates, in the agent's order.
    pub classes: Vec<AgentClass>,
    /// Fault injections per class (chaos sweeps), nonzero entries only.
    pub faults: Vec<(String, u64)>,
    /// Telemetry ring overwrites reported by the agent.
    pub dropped: u64,
}

impl AgentMetrics {
    /// Total ops across all classes.
    pub fn total_ops(&self) -> u64 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Total virtual ns across all classes.
    pub fn total_virtual_ns(&self) -> u64 {
        self.classes.iter().map(|c| c.virtual_ns).sum()
    }

    /// Total fault injections.
    pub fn total_faults(&self) -> u64 {
        self.faults.iter().map(|(_, n)| n).sum()
    }
}

/// Parse the single JSON metrics line `agent` printed. Every failure path
/// names the agent: when a 12-agent sweep rejects one line, the report
/// must say whose.
pub fn parse_agent_json(agent: &str, line: &str) -> Result<AgentMetrics, String> {
    parse_inner(line).map_err(|e| format!("agent {agent}: malformed metrics JSON: {e}"))
}

fn field_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer {key:?}"))
}

fn parse_inner(line: &str) -> Result<AgentMetrics, String> {
    let line = line.trim();
    if line.is_empty() {
        return Err("empty output (agent printed no metrics line)".into());
    }
    let root = parse(line)?;
    let ranks = field_u64(&root, "ranks", "root")?;
    let mut counters = Vec::new();
    if let Some(Json::Obj(members)) = root.get("counters") {
        for (k, v) in members {
            counters
                .push((k.clone(), v.as_u64().ok_or(format!("counter {k:?} is not an integer"))?));
        }
    }
    let classes_json =
        root.get("classes").and_then(Json::as_arr).ok_or("root: missing \"classes\" array")?;
    let mut classes = Vec::with_capacity(classes_json.len());
    for c in classes_json {
        let class = c
            .get("class")
            .and_then(Json::as_str)
            .ok_or("class entry: missing \"class\" name")?
            .to_string();
        let ctx = format!("class {class:?}");
        let mut pairs = Vec::new();
        for pair in c.get("lat").and_then(Json::as_arr).ok_or(format!("{ctx}: missing lat"))? {
            let p = pair.as_arr().ok_or(format!("{ctx}: lat entry is not a pair"))?;
            match p {
                [b, n] => pairs.push((
                    b.as_u64().ok_or(format!("{ctx}: bad lat bucket index"))? as usize,
                    n.as_u64().ok_or(format!("{ctx}: bad lat bucket count"))?,
                )),
                _ => return Err(format!("{ctx}: lat entry is not a [bucket,count] pair")),
            }
        }
        let count = field_u64(c, "count", &ctx)?;
        let lat = HistSnapshot::from_pairs(&pairs).map_err(|e| format!("{ctx}: {e}"))?;
        if lat.total() != count {
            return Err(format!(
                "{ctx}: lat buckets sum to {} but count says {count}",
                lat.total()
            ));
        }
        classes.push(AgentClass {
            class,
            count,
            bytes: field_u64(c, "bytes", &ctx)?,
            virtual_ns: field_u64(c, "virtual_ns", &ctx)?,
            lat,
        });
    }
    let mut faults = Vec::new();
    if let Some(Json::Obj(members)) = root.get("faults") {
        for (k, v) in members {
            let n = v.as_u64().ok_or(format!("fault {k:?} is not an integer"))?;
            if n > 0 {
                faults.push((k.clone(), n));
            }
        }
    }
    let dropped = field_u64(&root, "dropped", "root")?;
    Ok(AgentMetrics { ranks, counters, classes, faults, dropped })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(ranks: &str, seed: &str, backend: &str) -> BTreeMap<&'static str, String> {
        let mut m = BTreeMap::new();
        m.insert("ranks", ranks.to_string());
        m.insert("seed", seed.to_string());
        m.insert("backend", backend.to_string());
        m
    }

    #[test]
    fn template_expansion_substitutes_every_placeholder() {
        let v = vars("8", "42", "msg");
        assert_eq!(expand_template("--ranks={ranks}", &v).unwrap(), "--ranks=8");
        assert_eq!(expand_template("{backend}-{seed}", &v).unwrap(), "msg-42");
        assert_eq!(expand_template("plain", &v).unwrap(), "plain");
    }

    #[test]
    fn template_expansion_rejects_typos_and_unterminated() {
        let v = vars("8", "42", "msg");
        let err = expand_template("--ranks={rnaks}", &v).unwrap_err();
        assert!(err.contains("{rnaks}"), "{err}");
        assert!(expand_template("--ranks={ranks", &v).is_err());
    }

    #[test]
    fn expand_argv_covers_the_standard_registry_shape() {
        let spec = AgentSpec {
            name: "bench-rma",
            bin: "bench_agent",
            args: &[
                "--agent-json",
                "--backend",
                "{backend}",
                "--ranks",
                "{ranks}",
                "--node-size",
                "{node_size}",
                "--seed",
                "{seed}",
            ],
            backend: "rma",
            ranks: &[2, 4],
            node_sizes: &[1, 2],
            stable: true,
        };
        let argv = expand_argv(&spec, 4, 2, 7).unwrap();
        assert_eq!(
            argv,
            ["--agent-json", "--backend", "rma", "--ranks", "4", "--node-size", "2", "--seed", "7"]
        );
    }

    #[test]
    fn malformed_agent_json_errors_name_the_agent() {
        for bad in [
            "",
            "not json",
            r#"{"classes":[]}"#,                                  // no ranks
            r#"{"ranks":2,"dropped":0}"#,                         // no classes
            r#"{"ranks":2,"classes":[{"count":1}],"dropped":0}"#, // class unnamed
            r#"{"ranks":2,"classes":[{"class":"put","count":2,"bytes":0,"virtual_ns":5,"lat":[[1,1]]}],"dropped":0}"#, // count/bucket mismatch
            r#"{"ranks":2,"classes":[{"class":"put","count":1,"bytes":0,"virtual_ns":5,"lat":[[999,1]]}],"dropped":0}"#, // bucket out of range
        ] {
            let err = parse_agent_json("bench-rma-p4", bad).unwrap_err();
            assert!(
                err.contains("bench-rma-p4"),
                "error must name the agent: {err} (input {bad:?})"
            );
        }
    }

    #[test]
    fn well_formed_line_round_trips() {
        let line = r#"{"ranks":2,"counters":{"puts":3,"flushes":1},"classes":[{"class":"put","count":3,"bytes":24,"virtual_ns":4500,"p50":2048,"p99":2048,"p999":2048,"lat":[[11,2],[12,1]],"size":[[4,3]]}],"rank_traffic":[],"transports":[],"windows":[],"faults":{"jitter":0,"spike":2},"dropped":0}"#;
        let m = parse_agent_json("scope", line).unwrap();
        assert_eq!(m.ranks, 2);
        assert_eq!(m.counters[0], ("puts".into(), 3));
        assert_eq!(m.classes.len(), 1);
        assert_eq!(m.classes[0].count, 3);
        assert_eq!(m.classes[0].lat.total(), 3);
        assert_eq!(m.faults, vec![("spike".into(), 2)], "zero fault rows are elided");
        assert_eq!(m.total_ops(), 3);
        assert_eq!(m.total_virtual_ns(), 4500);
        assert_eq!(m.total_faults(), 2);
    }
}
