//! Merging agent snapshots into the fleet summary.
//!
//! Each agent contributes one [`AgentMetrics`] (parsed from its JSON
//! line). The fleet folds them two ways:
//!
//! * **per configuration** — one summary entry per (agent, ranks) sweep
//!   point, with p50/p99/p999 recomputed from the raw buckets;
//! * **merged** — one distribution per op class across *all*
//!   configurations, exploiting that [`HistSnapshot::merge`] is
//!   associative and commutative: the fleet-wide tail is exact, not an
//!   average of quantiles.
//!
//! The rendered summary contains only virtual-time data, so it is
//! byte-stable across machines and lives under the same CI byte-diff
//! contract as `soak.csv`. Wall-clock usage (RSS/CPU/wall) goes into the
//! human sweep table instead.

use crate::agent::AgentMetrics;
use fompi_fabric::telemetry::HistSnapshot;
use std::collections::BTreeMap;

/// One completed sweep point: an agent run plus its parsed metrics.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// Registry name of the agent.
    pub agent: String,
    /// Backend the agent exercises.
    pub backend: String,
    /// Rank count of this sweep point.
    pub ranks: usize,
    /// Node size (ranks per simulated node) of this sweep point.
    pub node_size: usize,
    /// Seed the agent ran with.
    pub seed: u64,
    /// Parsed metrics line.
    pub metrics: AgentMetrics,
    /// Wall-clock usage (table only; never rendered into the summary).
    pub usage: crate::procstat::Usage,
    /// Schedule-independence marker copied from the [`crate::AgentSpec`].
    /// Unstable runs appear in the table but are excluded from the
    /// byte-diffed summary and the merged distributions.
    pub stable: bool,
}

/// A per-class distribution merged across configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedClass {
    /// Op class name.
    pub class: String,
    /// Total ops.
    pub count: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Total virtual ns.
    pub virtual_ns: u64,
    /// Merged latency distribution.
    pub lat: HistSnapshot,
}

/// Merge every run's per-class histograms into one distribution per class
/// (sorted by class name). Associativity makes the result independent of
/// run order.
pub fn merge_classes(runs: &[ConfigResult]) -> Vec<MergedClass> {
    let mut by_class: BTreeMap<&str, MergedClass> = BTreeMap::new();
    for run in runs.iter().filter(|r| r.stable) {
        for c in &run.metrics.classes {
            let entry = by_class.entry(&c.class).or_insert_with(|| MergedClass {
                class: c.class.clone(),
                count: 0,
                bytes: 0,
                virtual_ns: 0,
                lat: HistSnapshot::new(),
            });
            entry.count += c.count;
            entry.bytes += c.bytes;
            entry.virtual_ns += c.virtual_ns;
            entry.lat.merge(&c.lat);
        }
    }
    by_class.into_values().collect()
}

fn buckets_json(h: &HistSnapshot) -> String {
    let mut out = String::from("[");
    for (i, (bucket, n)) in h.pairs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{bucket},{n}]"));
    }
    out.push(']');
    out
}

fn class_json(class: &str, count: u64, bytes: u64, virtual_ns: u64, lat: &HistSnapshot) -> String {
    format!(
        "{{\"class\":\"{class}\",\"count\":{count},\"bytes\":{bytes},\"virtual_ns\":{virtual_ns},\
         \"p50\":{},\"p99\":{},\"p999\":{},\"lat\":{}}}",
        lat.quantile_hi(0.5),
        lat.quantile_hi(0.99),
        lat.quantile_hi(0.999),
        buckets_json(lat),
    )
}

/// Render the byte-stable fleet summary. `runs` are sorted internally by
/// (backend, agent, ranks, node_size), so registry order doesn't leak
/// into the file; schedule-dependent (unstable) runs are dropped, so the
/// file stays byte-stable even when the sweep includes them.
pub fn render_summary(runs: &[ConfigResult]) -> String {
    let mut sorted: Vec<&ConfigResult> = runs.iter().filter(|r| r.stable).collect();
    sorted.sort_by(|a, b| {
        (&a.backend, &a.agent, a.ranks, a.node_size).cmp(&(
            &b.backend,
            &b.agent,
            b.ranks,
            b.node_size,
        ))
    });
    let mut out = String::from("{\n  \"configs\": [\n");
    for (i, run) in sorted.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"agent\":\"{}\",\"backend\":\"{}\",\"ranks\":{},\"node_size\":{},\"seed\":{},\n",
            run.agent, run.backend, run.ranks, run.node_size, run.seed
        ));
        out.push_str("     \"classes\":[\n");
        for (j, c) in run.metrics.classes.iter().enumerate() {
            out.push_str(&format!(
                "      {}{}\n",
                class_json(&c.class, c.count, c.bytes, c.virtual_ns, &c.lat),
                if j + 1 == run.metrics.classes.len() { "" } else { "," }
            ));
        }
        out.push_str("     ],\n");
        out.push_str("     \"faults\":{");
        for (j, (name, n)) in run.metrics.faults.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{n}"));
        }
        out.push_str(&format!(
            "}},\"dropped\":{}}}{}\n",
            run.metrics.dropped,
            if i + 1 == sorted.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"merged\": [\n");
    let merged = merge_classes(runs);
    for (i, m) in merged.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            class_json(&m.class, m.count, m.bytes, m.virtual_ns, &m.lat),
            if i + 1 == merged.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the human sweep table (wall-clock columns included — this is
/// the non-deterministic sibling of the summary).
pub fn render_table(runs: &[ConfigResult]) -> String {
    let mut sorted: Vec<&ConfigResult> = runs.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.backend, &a.agent, a.ranks, a.node_size).cmp(&(
            &b.backend,
            &b.agent,
            b.ranks,
            b.node_size,
        ))
    });
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>7} {:>5} {:>4} {:>5} {:>9} {:>12} {:>11} {:>8} {:>8} {:>7} {:>7}\n",
        "agent",
        "backend",
        "ranks",
        "node",
        "seed",
        "ops",
        "virtual_ms",
        "put_p99_ns",
        "wall_ms",
        "cpu_ms",
        "rss_mb",
        "faults"
    ));
    for run in &sorted {
        let put_p99 = run
            .metrics
            .classes
            .iter()
            .find(|c| c.class == "put")
            .map(|c| c.lat.quantile_hi(0.99).to_string())
            .unwrap_or_else(|| "-".into());
        let fmt_opt = |v: Option<f64>| v.map(|x| format!("{x:.1}")).unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<14} {:>7} {:>5} {:>4} {:>5} {:>9} {:>12.3} {:>11} {:>8.1} {:>8} {:>7} {:>7}\n",
            run.agent,
            run.backend,
            run.ranks,
            run.node_size,
            run.seed,
            run.metrics.total_ops(),
            run.metrics.total_virtual_ns() as f64 / 1e6,
            put_p99,
            run.usage.wall_s * 1e3,
            fmt_opt(run.usage.cpu_s.map(|s| s * 1e3)),
            fmt_opt(run.usage.max_rss_kb.map(|kb| kb as f64 / 1024.0)),
            run.metrics.total_faults(),
        ));
    }
    out
}

/// Flatten a parsed fleet summary into gate metrics:
/// `<agent>/p<ranks>/n<node_size>/<class>/<field>` per configuration plus
/// `merged/<class>/<field>` for the fleet-wide distributions, where
/// `<field>` ranges over `count`, `bytes`, `virtual_ns`, `p50`, `p99`,
/// `p999`.
pub fn flatten_summary(root: &crate::json::Json) -> Result<BTreeMap<String, f64>, String> {
    use crate::json::Json;
    let mut out = BTreeMap::new();
    let mut add_classes = |prefix: &str, classes: &Json| -> Result<(), String> {
        for c in classes.as_arr().ok_or(format!("{prefix}: classes is not an array"))? {
            let name = c
                .get("class")
                .and_then(Json::as_str)
                .ok_or(format!("{prefix}: class entry without a name"))?;
            for field in ["count", "bytes", "virtual_ns", "p50", "p99", "p999"] {
                let v = c
                    .get(field)
                    .and_then(Json::as_f64)
                    .ok_or(format!("{prefix}/{name}: missing {field}"))?;
                out.insert(format!("{prefix}/{name}/{field}"), v);
            }
        }
        Ok(())
    };
    for cfg in root.get("configs").and_then(Json::as_arr).ok_or("summary: missing configs")? {
        let agent = cfg.get("agent").and_then(Json::as_str).ok_or("config without agent")?;
        let ranks = cfg.get("ranks").and_then(Json::as_u64).ok_or("config without ranks")?;
        let node = cfg.get("node_size").and_then(Json::as_u64).ok_or("config without node_size")?;
        let prefix = format!("{agent}/p{ranks}/n{node}");
        add_classes(&prefix, cfg.get("classes").ok_or(format!("{prefix}: missing classes"))?)?;
    }
    add_classes("merged", root.get("merged").ok_or("summary: missing merged")?)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{parse_agent_json, AgentClass};
    use crate::procstat::Usage;

    fn run(agent: &str, backend: &str, ranks: usize, classes: Vec<AgentClass>) -> ConfigResult {
        ConfigResult {
            agent: agent.into(),
            backend: backend.into(),
            ranks,
            node_size: 1,
            seed: 1,
            metrics: AgentMetrics {
                ranks: ranks as u64,
                counters: vec![],
                classes,
                faults: vec![],
                dropped: 0,
            },
            usage: Usage::default(),
            stable: true,
        }
    }

    fn class(name: &str, samples: &[u64]) -> AgentClass {
        let h = fompi_fabric::telemetry::Histogram::new();
        for &s in samples {
            h.record(s);
        }
        AgentClass {
            class: name.into(),
            count: samples.len() as u64,
            bytes: 8 * samples.len() as u64,
            virtual_ns: samples.iter().sum(),
            lat: h.snapshot(),
        }
    }

    use crate::agent::AgentMetrics;

    #[test]
    fn merged_tail_is_the_union_not_an_average() {
        // One fast config, one slow: the merged p99 must come from the
        // union distribution (the slow samples), which no averaging of
        // per-config quantiles would produce.
        let fast = run("a", "rma", 2, vec![class("put", &[100; 90])]);
        let slow = run("b", "msg", 2, vec![class("put", &[1_000_000; 10])]);
        let merged = merge_classes(&[fast, slow]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].count, 100);
        assert!(merged[0].lat.quantile_hi(0.99) >= 1_000_000);
        assert!(merged[0].lat.quantile_hi(0.5) < 1_000_000);
    }

    #[test]
    fn summary_is_independent_of_run_order_and_parses_flat() {
        let a = run("a", "rma", 2, vec![class("put", &[64, 128]), class("fence", &[500])]);
        let b = run("b", "msg", 4, vec![class("put", &[256])]);
        let fwd = render_summary(&[a.clone(), b.clone()]);
        let rev = render_summary(&[b, a]);
        assert_eq!(fwd, rev, "summary must not depend on registry order");
        let parsed = crate::json::parse(&fwd).unwrap();
        let flat = flatten_summary(&parsed).unwrap();
        assert_eq!(flat["a/p2/n1/put/count"], 2.0);
        assert_eq!(flat["b/p4/n1/put/count"], 1.0);
        assert_eq!(flat["merged/put/count"], 3.0);
        assert_eq!(flat["merged/fence/virtual_ns"], 500.0);
        assert!(flat.contains_key("merged/put/p999"));
    }

    #[test]
    fn node_size_is_a_first_class_sweep_axis() {
        // Same agent, same ranks, different placement: the two sweep
        // points must survive as distinct configs with distinct gate keys
        // (a summary that collapsed them would silently gate only one).
        let n1 = run("a", "rma", 4, vec![class("put", &[64])]);
        let mut n2 = run("a", "rma", 4, vec![class("put", &[32])]);
        n2.node_size = 2;
        let text = render_summary(&[n2.clone(), n1.clone()]);
        let flat = flatten_summary(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(flat["a/p4/n1/put/virtual_ns"], 64.0);
        assert_eq!(flat["a/p4/n2/put/virtual_ns"], 32.0);
        // Sort order: n1 before n2 regardless of input order.
        assert!(text.find("\"node_size\":1").unwrap() < text.find("\"node_size\":2").unwrap());
        let table = render_table(&[n2, n1]);
        assert!(table.contains("node"), "table must carry the node column:\n{table}");
    }

    #[test]
    fn summary_classes_round_trip_through_the_agent_parser() {
        // The per-config class entries in the summary use the same shape
        // as agent lines, so the agent-line histogram parser can read the
        // buckets back and land on identical quantiles.
        let a = run("a", "rma", 2, vec![class("put", &[64, 128, 4096])]);
        let text = render_summary(std::slice::from_ref(&a));
        let parsed = crate::json::parse(&text).unwrap();
        let cfg = &parsed.get("configs").unwrap().as_arr().unwrap()[0];
        let line = format!(
            "{{\"ranks\":2,\"classes\":{},\"dropped\":0}}",
            // Re-render the classes array compactly via the original text
            // slice: grab it from the parsed tree instead.
            {
                let classes = cfg.get("classes").unwrap().as_arr().unwrap();
                let mut s = String::from("[");
                for (i, c) in classes.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let lat = c.get("lat").unwrap().as_arr().unwrap();
                    let mut lat_s = String::from("[");
                    for (j, p) in lat.iter().enumerate() {
                        if j > 0 {
                            lat_s.push(',');
                        }
                        let p = p.as_arr().unwrap();
                        lat_s.push_str(&format!(
                            "[{},{}]",
                            p[0].as_u64().unwrap(),
                            p[1].as_u64().unwrap()
                        ));
                    }
                    lat_s.push(']');
                    s.push_str(&format!(
                        "{{\"class\":\"{}\",\"count\":{},\"bytes\":{},\"virtual_ns\":{},\"lat\":{}}}",
                        c.get("class").unwrap().as_str().unwrap(),
                        c.get("count").unwrap().as_u64().unwrap(),
                        c.get("bytes").unwrap().as_u64().unwrap(),
                        c.get("virtual_ns").unwrap().as_u64().unwrap(),
                        lat_s
                    ));
                }
                s.push(']');
                s
            }
        );
        let back = parse_agent_json("round-trip", &line).unwrap();
        assert_eq!(back.classes[0].lat, a.metrics.classes[0].lat);
        assert_eq!(
            back.classes[0].lat.quantile_hi(0.99),
            a.metrics.classes[0].lat.quantile_hi(0.99)
        );
    }

    #[test]
    fn unstable_runs_stay_in_the_table_but_out_of_the_summary() {
        let stable = run("a", "rma", 2, vec![class("put", &[64])]);
        let mut volatile = run("kv", "txn", 8, vec![class("txn_commit", &[900])]);
        volatile.stable = false;
        let runs = [stable, volatile];
        let summary = render_summary(&runs);
        assert!(!summary.contains("kv"), "unstable metrics leaked into the summary:\n{summary}");
        assert!(!summary.contains("txn_commit"));
        assert_eq!(merge_classes(&runs).len(), 1, "merged classes must skip unstable runs");
        let table = render_table(&runs);
        assert!(table.contains("kv"), "unstable runs must still show in the table:\n{table}");
    }

    #[test]
    fn table_renders_missing_proc_fields_as_dashes() {
        let t = render_table(&[run("a", "rma", 2, vec![class("get", &[64])])]);
        assert!(t.contains("agent"));
        assert!(t.contains(" - "), "None usage fields render as '-': {t}");
    }
}
