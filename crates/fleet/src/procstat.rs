//! Spawning agents and measuring what they really cost.
//!
//! Virtual-time metrics come back on the agent's stdout; this module adds
//! the *wall-clock* side: elapsed time, CPU time and peak RSS per agent
//! process. On Linux both come from `/proc/<pid>` (`status` for `VmHWM`,
//! `stat` for utime/stime), sampled by the orchestrator while the child
//! runs; elsewhere the fields degrade to `None` and only wall time is
//! reported. These numbers feed the human sweep table only — the
//! byte-stable `fleet_summary.json` carries exclusively deterministic
//! virtual-time data.

use std::io::Read;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Linux `USER_HZ`: the unit of utime/stime in `/proc/<pid>/stat`. 100 on
/// every mainstream Linux config; without libc there is no `sysconf`, and
/// a wrong constant here skews a *reported* wall-side number only.
const CLK_TCK: f64 = 100.0;

/// How often the monitor samples `/proc` while the agent runs.
const POLL: Duration = Duration::from_millis(10);

/// Wall-clock resource usage of one finished agent process.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Usage {
    /// Elapsed wall time.
    pub wall_s: f64,
    /// CPU seconds (user + system), if `/proc` was readable.
    pub cpu_s: Option<f64>,
    /// Peak resident set in KiB (`VmHWM`), if `/proc` was readable.
    pub max_rss_kb: Option<u64>,
}

/// Outcome of running one agent to completion.
#[derive(Debug)]
pub struct AgentRun {
    /// Captured stdout (the metrics line lives here).
    pub stdout: String,
    /// Captured stderr (surfaced on failure).
    pub stderr: String,
    /// Process exit code (`None` if killed by signal/timeout).
    pub exit_code: Option<i32>,
    /// Wall/CPU/RSS usage.
    pub usage: Usage,
}

/// Parse the `VmHWM:` row of `/proc/<pid>/status` into KiB.
pub fn parse_vmhwm_kb(status: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
}

/// Parse utime+stime (clock ticks) from a `/proc/<pid>/stat` line. The
/// comm field (2) may contain spaces and parentheses, so fields are
/// counted after the *last* `)`: utime and stime are fields 14 and 15 of
/// the full line, i.e. positions 11 and 12 after comm.
pub fn parse_cpu_ticks(stat: &str) -> Option<u64> {
    let after_comm = &stat[stat.rfind(')')? + 1..];
    let mut fields = after_comm.split_ascii_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some(utime + stime)
}

fn sample_proc(pid: u32) -> (Option<u64>, Option<u64>) {
    let rss = std::fs::read_to_string(format!("/proc/{pid}/status"))
        .ok()
        .as_deref()
        .and_then(parse_vmhwm_kb);
    let ticks = std::fs::read_to_string(format!("/proc/{pid}/stat"))
        .ok()
        .as_deref()
        .and_then(parse_cpu_ticks);
    (rss, ticks)
}

/// Run `cmd` to completion, capturing output and usage. The child is
/// killed (and an error returned) if it runs past `timeout` — a hung
/// agent must fail the sweep loudly, not wedge CI. `label` names the
/// agent in every error.
pub fn run_agent(label: &str, cmd: &mut Command, timeout: Duration) -> Result<AgentRun, String> {
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped()).stdin(Stdio::null());
    let start = Instant::now();
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("agent {label}: failed to spawn {:?}: {e}", cmd.get_program()))?;
    let pid = child.id();

    // Drain both pipes on threads so a chatty agent can't fill a pipe and
    // deadlock against our wait loop.
    let mut stdout_pipe = child.stdout.take().expect("stdout piped");
    let mut stderr_pipe = child.stderr.take().expect("stderr piped");
    let out_thread = std::thread::spawn(move || {
        let mut s = String::new();
        stdout_pipe.read_to_string(&mut s).ok();
        s
    });
    let err_thread = std::thread::spawn(move || {
        let mut s = String::new();
        stderr_pipe.read_to_string(&mut s).ok();
        s
    });

    let (mut max_rss, mut cpu_ticks) = (None, None);
    let status = loop {
        let (rss, ticks) = sample_proc(pid);
        max_rss = max_rss.max(rss);
        cpu_ticks = cpu_ticks.max(ticks);
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if start.elapsed() > timeout {
                    child.kill().ok();
                    child.wait().ok();
                    return Err(format!(
                        "agent {label}: timed out after {}s (FLEET_TIMEOUT_SECS) and was killed",
                        timeout.as_secs()
                    ));
                }
                std::thread::sleep(POLL);
            }
            Err(e) => return Err(format!("agent {label}: wait failed: {e}")),
        }
    };
    let wall_s = start.elapsed().as_secs_f64();
    let stdout = out_thread.join().unwrap_or_default();
    let stderr = err_thread.join().unwrap_or_default();
    Ok(AgentRun {
        stdout,
        stderr,
        exit_code: status.code(),
        usage: Usage { wall_s, cpu_s: cpu_ticks.map(|t| t as f64 / CLK_TCK), max_rss_kb: max_rss },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmhwm_parses_the_proc_status_row() {
        let status =
            "Name:\tbench_agent\nVmPeak:\t  12345 kB\nVmHWM:\t    9876 kB\nVmRSS:\t 100 kB\n";
        assert_eq!(parse_vmhwm_kb(status), Some(9876));
        assert_eq!(parse_vmhwm_kb("Name: x\n"), None);
        assert_eq!(parse_vmhwm_kb(""), None);
    }

    #[test]
    fn cpu_ticks_survive_hostile_comm_names() {
        // comm with spaces and a ')' — fields must be counted after the
        // LAST close paren. utime=77 stime=23 at fields 14/15.
        let stat = "4242 (a (we)ird) name) R 1 2 3 4 5 6 7 8 9 10 77 23 0 0 20 0 1 0 100 200 300";
        assert_eq!(parse_cpu_ticks(stat), Some(100));
        assert_eq!(parse_cpu_ticks("no parens here"), None);
        assert_eq!(parse_cpu_ticks("1 (x) R 1 2"), None, "truncated line");
    }

    #[test]
    fn run_agent_captures_output_and_usage() {
        // `sh` exists everywhere this repo builds; the child burns a tiny
        // bit of CPU so the usage fields are exercised.
        let mut cmd = Command::new("sh");
        cmd.args(["-c", "echo '{\"ok\":1}'; echo warn >&2"]);
        let run = run_agent("sh-test", &mut cmd, Duration::from_secs(30)).unwrap();
        assert_eq!(run.exit_code, Some(0));
        assert_eq!(run.stdout.trim(), "{\"ok\":1}");
        assert_eq!(run.stderr.trim(), "warn");
        assert!(run.usage.wall_s >= 0.0);
    }

    #[test]
    fn run_agent_kills_on_timeout_naming_the_agent() {
        let mut cmd = Command::new("sh");
        cmd.args(["-c", "sleep 30"]);
        let err = run_agent("sleepy", &mut cmd, Duration::from_millis(80)).unwrap_err();
        assert!(err.contains("sleepy") && err.contains("timed out"), "{err}");
    }

    #[test]
    fn run_agent_reports_spawn_failure() {
        let err =
            run_agent("ghost", &mut Command::new("/nonexistent/bin/ghost"), Duration::from_secs(1))
                .unwrap_err();
        assert!(err.contains("ghost") && err.contains("spawn"), "{err}");
    }
}
