#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests. Run from anywhere in the repo.
#
#   scripts/ci.sh            # the full gate
#   scripts/ci.sh --fix      # apply rustfmt instead of checking
#
# The workspace is dependency-free by design, so everything runs --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt --all
    exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --offline --workspace -q

# Chaos soak: every protocol under seeded light/heavy fault plans, with
# per-protocol pass counts written to results/soak.csv. A violation names
# the reproducing seed and fails the gate. Default is a bounded smoke;
# SOAK_SECONDS=900 scripts/ci.sh keeps feeding fresh seed batches until
# the deadline instead (nightly/overnight soaks).
if [[ -n "${SOAK_SECONDS:-}" ]]; then
    echo "== soak long mode (${SOAK_SECONDS}s) =="
    cargo run --offline --release -q -p fompi-bench --bin soak
else
    echo "== soak smoke (2 seeds, all protocols) =="
    SOAK_SEEDS="${SOAK_SEEDS:-2}" cargo run --offline --release -q -p fompi-bench --bin soak
fi

echo "CI gate passed."
