#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests, soak smoke, perf-regression
# gate, results determinism. Run from anywhere in the repo.
#
#   scripts/ci.sh            # the full gate
#   scripts/ci.sh --fix      # apply rustfmt instead of checking
#   scripts/ci.sh sanitize   # ThreadSanitizer + Miri pass (needs nightly)
#
# The workspace is dependency-free by design, so everything runs --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt --all
    exit 0
fi

# Sanitizer stage: opt-in (`scripts/ci.sh sanitize`) because it needs a
# nightly toolchain; each tool degrades to a loud skip when unavailable so
# the stage is safe to run anywhere.
#
# Documented skip-list (why not the whole workspace):
#   - TSan runs the fompi-fabric unit tests only: the notify ring, striped
#     horizons, batch counters, and shim locks are where the hand-rolled
#     atomics live. Full-workspace soak under TSan is ~50x and times out CI.
#   - Miri runs fompi-fabric too (raw segment pointers, Vyukov ring); the
#     upper crates are safe Rust over these primitives and add only runtime.
#   - Loom models for the ring/stripes are cfg-gated (`--cfg loom`) and need
#     loom as a local dev-dependency; the workspace is dependency-free, so
#     they run on developer machines, not here (see fabric/src/notify.rs).
if [[ "${1:-}" == "sanitize" ]]; then
    if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
        echo "sanitize: no nightly toolchain installed; skipping (rustup toolchain install nightly)"
        exit 0
    fi
    host=$(rustc -vV | sed -n 's/^host: //p')
    echo "== ThreadSanitizer: fompi-fabric unit tests =="
    if rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src (installed)'; then
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test --offline -Zbuild-std --target "$host" \
            -p fompi-fabric --lib -q
    else
        echo "sanitize: nightly rust-src missing; skipping TSan (rustup component add rust-src --toolchain nightly)"
    fi
    echo "== Miri: fompi-fabric unit tests =="
    if rustup component list --toolchain nightly 2>/dev/null | grep -q 'miri (installed)'; then
        # Seeded PRNG + virtual clock means Miri needs no -Zmiri-disable flags.
        cargo +nightly miri test --offline -p fompi-fabric --lib -q
    else
        echo "sanitize: nightly miri missing; skipping (rustup component add miri --toolchain nightly)"
    fi
    echo "sanitize stage done."
    exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --offline --workspace -q

# Chaos soak: every protocol under seeded light/heavy fault plans, with
# per-protocol pass counts written to results/soak.csv. A violation names
# the reproducing seed and fails the gate. Default is a bounded smoke;
# SOAK_SECONDS=900 scripts/ci.sh keeps feeding fresh seed batches until
# the deadline instead (nightly/overnight soaks).
if [[ -n "${SOAK_SECONDS:-}" ]]; then
    echo "== soak long mode (${SOAK_SECONDS}s) =="
    cargo run --offline --release -q -p fompi-bench --bin soak
else
    echo "== soak smoke (2 seeds, all protocols) =="
    # Pinned environment: the smoke must be bit-reproducible so the
    # results-determinism check below can diff results/soak.csv.
    env -u FOMPI_SEED -u FOMPI_FAULTS -u FOMPI_BATCH -u FOMPI_TELEMETRY -u FOMPI_RACECHECK -u FOMPI_PROFILE -u FOMPI_METRICS -u FOMPI_TXN_RETRY \
        SOAK_SEEDS="${SOAK_SEEDS:-2}" \
        cargo run --offline --release -q -p fompi-bench --bin soak
fi

# Perf-regression gate: the fabric charges *virtual* time from a fixed
# cost model, so the perfgate metrics are bit-reproducible on any machine
# — a >1% delta is a genuine protocol/model change, never noise. On an
# intentional change, refresh the baseline:
#   cargo run --release -p fompi-bench --bin perfgate
#   cp BENCH_PR7.json results/BENCH_PR7_baseline.json
echo "== perfgate: virtual-time regression check (tolerance 1%) =="
env -u FOMPI_FAULTS -u FOMPI_BATCH -u FOMPI_TELEMETRY -u FOMPI_RACECHECK -u FOMPI_PROFILE -u FOMPI_METRICS -u FOMPI_TXN_RETRY FOMPI_SEED=1 \
    cargo run --offline --release -q -p fompi-bench --bin perfgate -- \
    --check results/BENCH_PR7_baseline.json

# Results determinism: the checked-in drift table (and in smoke mode the
# soak table, which the soak smoke above just rewrote at pinned seeds)
# must regenerate byte-identically. A diff here means a change altered
# virtual-time behaviour without refreshing results/.
echo "== results determinism: regenerate drift.csv and compare =="
env -u FOMPI_FAULTS -u FOMPI_BATCH -u FOMPI_TELEMETRY -u FOMPI_RACECHECK -u FOMPI_PROFILE -u FOMPI_METRICS -u FOMPI_TXN_RETRY FOMPI_SEED=1 \
    cargo run --offline --release -q -p fompi-bench --bin reproduce -- drift >/dev/null
git diff --exit-code -- results/drift.csv
if [[ -z "${SOAK_SECONDS:-}" && "${SOAK_SEEDS:-2}" == "2" ]]; then
    git diff --exit-code -- results/soak.csv
fi
# Notified-access ablation: the micro-handoff and channel rows are
# schedule-independent, so the CSV must regenerate byte-identically (the
# bin also asserts notified beats fence/PSCW/flag-polling, and prints the
# schedule-dependent DSDE/hashtable comparisons without gating them).
echo "== results determinism: regenerate notify_ablation.csv and compare =="
env -u FOMPI_FAULTS -u FOMPI_BATCH -u FOMPI_TELEMETRY -u FOMPI_RACECHECK -u FOMPI_PROFILE -u FOMPI_METRICS -u FOMPI_TXN_RETRY FOMPI_SEED=1 \
    cargo run --offline --release -q -p fompi-bench --bin notify_ablation >/dev/null
git diff --exit-code -- results/notify_ablation.csv
# drift_sched.csv holds the schedule-dependent classes (post/start/wait
# partner-wait poll loops) — not reproducible, so not diffed; restore the
# committed copy so the gate leaves the tree clean.
git checkout -q -- results/drift_sched.csv

# Transaction contention ablation: the W conflicting writers are
# deterministically interleaved on one driver rank, so commit/abort
# counts and every virtual-time latency are exact functions of the seed
# — the CSV must regenerate byte-identically (the bin also asserts the
# cascade arithmetic and that no update is lost).
echo "== results determinism: regenerate txn_ablation.csv and compare =="
env -u FOMPI_FAULTS -u FOMPI_BATCH -u FOMPI_TELEMETRY -u FOMPI_RACECHECK -u FOMPI_PROFILE -u FOMPI_METRICS -u FOMPI_TXN_RETRY FOMPI_SEED=1 \
    cargo run --offline --release -q -p fompi-bench --bin txn_ablation >/dev/null
git diff --exit-code -- results/txn_ablation.csv

# KV-store smoke: a fixed-seed transactional serve whose
# schedule-independent outcomes (commit count, occupancy, value sum,
# content hash, conservation violations) must regenerate byte-identically;
# the bin itself asserts nonzero commits and zero conservation violations.
echo "== kv_serve smoke: transactional KV store gate =="
env -u FOMPI_FAULTS -u FOMPI_BATCH -u FOMPI_TELEMETRY -u FOMPI_RACECHECK -u FOMPI_PROFILE -u FOMPI_METRICS -u FOMPI_TXN_RETRY FOMPI_SEED=1 \
    cargo run --offline --release -q -p fompi-bench --bin kv_serve -- --smoke >/dev/null
git diff --exit-code -- results/kv_smoke.csv

# Metrics-snapshot determinism: the fompi-scope workload is built from
# schedule-independent primitives only, so both exposition forms must
# regenerate byte-identically under the pinned environment.
echo "== results determinism: regenerate scope_metrics.{prom,json} and compare =="
env -u FOMPI_FAULTS -u FOMPI_BATCH -u FOMPI_TELEMETRY -u FOMPI_RACECHECK -u FOMPI_PROFILE -u FOMPI_METRICS -u FOMPI_TXN_RETRY FOMPI_SEED=1 \
    cargo run --offline --release -q -p fompi-bench --bin scope >/dev/null
git diff --exit-code -- results/scope_metrics.prom results/scope_metrics.json

# Observability overhead gate: the same workload with the whole plane
# armed (metrics + full profiling + tracing + flight recorder) and
# disarmed must land on bit-identical per-rank virtual clocks.
echo "== scope ablation: armed/disarmed virtual-time bit-identity =="
env -u FOMPI_FAULTS -u FOMPI_BATCH -u FOMPI_TELEMETRY -u FOMPI_RACECHECK -u FOMPI_PROFILE -u FOMPI_METRICS -u FOMPI_TXN_RETRY FOMPI_SEED=1 \
    cargo run --offline --release -q -p fompi-bench --bin scope -- --ablation

echo "CI gate passed."
