#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests. Run from anywhere in the repo.
#
#   scripts/ci.sh            # the full gate
#   scripts/ci.sh --fix      # apply rustfmt instead of checking
#
# The workspace is dependency-free by design, so everything runs --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    cargo fmt --all
    exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --offline --workspace -q

echo "CI gate passed."
