#!/usr/bin/env bash
# Tiered local CI gate. Run from anywhere in the repo.
#
#   scripts/ci.sh             # the full gate: lint → test → determinism → perfgate → fleet → mc
#   scripts/ci.sh quick       # fmt + clippy + unit tests only (pre-push tier)
#   scripts/ci.sh lint        # fmt --check + clippy -D warnings
#   scripts/ci.sh test        # workspace unit/integration tests
#   scripts/ci.sh determinism # regenerate every byte-diffed results/ file and compare
#   scripts/ci.sh perfgate    # virtual-time perf-regression gate
#   scripts/ci.sh fleet       # fleet smoke sweep: summary byte-diff + gate + gate self-test
#   scripts/ci.sh mc          # model checker: exhaustive runs + mutation gate + summary diff
#   scripts/ci.sh sanitize    # ThreadSanitizer + Miri pass (needs nightly)
#   scripts/ci.sh nightly     # chaos fleet sweep + long soak (SOAK_SECONDS, default 600)
#   scripts/ci.sh --fix       # apply rustfmt instead of checking
#
# Exit-code contract for the perf gates (perfgate and fleet --gate):
#   2 = a gated metric regressed;  3 = baseline missing or unparseable.
# This script translates both into a named failure line.
#
# The workspace is dependency-free by design, so everything runs --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

# Pinned environment for every determinism-gated run: scrub the runtime
# knobs so ambient shell state can't perturb a byte-diffed file, then pin
# the seed explicitly where the bin wants one.
SCRUB=(env -u FOMPI_SEED -u FOMPI_FAULTS -u FOMPI_BATCH -u FOMPI_TELEMETRY
    -u FOMPI_RACECHECK -u FOMPI_PROFILE -u FOMPI_METRICS -u FOMPI_TXN_RETRY
    -u FOMPI_RMC -u FOMPI_MC_REPLAY)

# ---------------------------------------------------------------- timing
STAGE_NAMES=()
STAGE_SECS=()

run_stage() { # run_stage <name> <fn>
    local name=$1 fn=$2 t0=$SECONDS
    echo "==== stage: $name ===="
    "$fn"
    STAGE_NAMES+=("$name")
    STAGE_SECS+=($((SECONDS - t0)))
}

timing_summary() {
    echo
    echo "== per-stage timing =="
    local i total=0
    for i in "${!STAGE_NAMES[@]}"; do
        printf '  %-14s %4ds\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
        total=$((total + STAGE_SECS[i]))
    done
    printf '  %-14s %4ds\n' total "$total"
}

# Translate a perf gate's exit code into a named failure (and propagate).
explain_gate() { # explain_gate <label> <rc>
    case "$2" in
    0) ;;
    2) echo "$1: FAILED — a gated metric regressed (exit 2)" >&2 ;;
    3) echo "$1: FAILED — baseline missing or unparseable (exit 3); refresh or restore the baseline file" >&2 ;;
    *) echo "$1: FAILED (exit $2)" >&2 ;;
    esac
    return "$2"
}

# ---------------------------------------------------------------- stages
stage_fmt() {
    cargo fmt --all -- --check
}

stage_clippy() {
    cargo clippy --offline --workspace --all-targets -- -D warnings
}

stage_tests() {
    cargo test --offline --workspace -q
}

stage_determinism() {
    # Chaos soak smoke: every protocol under seeded light/heavy fault
    # plans; the pinned run rewrites results/soak.csv for the diff below.
    echo "== soak smoke (2 seeds, all protocols) =="
    "${SCRUB[@]}" SOAK_SEEDS="${SOAK_SEEDS:-2}" \
        cargo run --offline --release -q -p fompi-bench --bin soak

    echo "== results determinism: drift.csv =="
    "${SCRUB[@]}" FOMPI_SEED=1 \
        cargo run --offline --release -q -p fompi-bench --bin reproduce -- drift >/dev/null
    git diff --exit-code -- results/drift.csv
    if [[ "${SOAK_SEEDS:-2}" == "2" ]]; then
        git diff --exit-code -- results/soak.csv
    fi

    # Notified-access ablation: the micro-handoff and channel rows are
    # schedule-independent, so the CSV must regenerate byte-identically.
    echo "== results determinism: notify_ablation.csv =="
    "${SCRUB[@]}" FOMPI_SEED=1 \
        cargo run --offline --release -q -p fompi-bench --bin notify_ablation >/dev/null
    git diff --exit-code -- results/notify_ablation.csv
    # drift_sched.csv holds the schedule-dependent classes — not
    # reproducible, so not diffed; restore the committed copy.
    git checkout -q -- results/drift_sched.csv

    # Remote-memory-channel ablation: every gated row is sender-side or a
    # single fixed pairing (1-slot fan-in alternation, credit-free
    # fan-out publishes, exact Drop-policy counts, single-client RPC), so
    # the CSV regenerates byte-identically; consumer ANY_SOURCE drain
    # times are schedule-dependent and stay out of the file.
    echo "== results determinism: rmc_ablation.csv =="
    "${SCRUB[@]}" FOMPI_SEED=1 \
        cargo run --offline --release -q -p fompi-bench --bin rmc_ablation >/dev/null
    git diff --exit-code -- results/rmc_ablation.csv

    # Transaction contention ablation: deterministically interleaved on
    # one driver rank, so the CSV is an exact function of the seed.
    echo "== results determinism: txn_ablation.csv =="
    "${SCRUB[@]}" FOMPI_SEED=1 \
        cargo run --offline --release -q -p fompi-bench --bin txn_ablation >/dev/null
    git diff --exit-code -- results/txn_ablation.csv

    # KV-store smoke: schedule-independent outcomes (commit count,
    # occupancy, value sum, content hash, conservation violations) only.
    echo "== kv_serve smoke: transactional KV store gate =="
    "${SCRUB[@]}" FOMPI_SEED=1 \
        cargo run --offline --release -q -p fompi-bench --bin kv_serve -- --smoke >/dev/null
    git diff --exit-code -- results/kv_smoke.csv

    # Metrics-snapshot determinism: both exposition forms byte-identical.
    echo "== results determinism: scope_metrics.{prom,json} =="
    "${SCRUB[@]}" FOMPI_SEED=1 \
        cargo run --offline --release -q -p fompi-bench --bin scope >/dev/null
    git diff --exit-code -- results/scope_metrics.prom results/scope_metrics.json

    # Observability overhead gate: armed vs disarmed virtual clocks must
    # be bit-identical.
    echo "== scope ablation: armed/disarmed virtual-time bit-identity =="
    "${SCRUB[@]}" FOMPI_SEED=1 \
        cargo run --offline --release -q -p fompi-bench --bin scope -- --ablation
}

stage_perfgate() {
    # The fabric charges *virtual* time from a fixed cost model, so the
    # perfgate metrics are bit-reproducible on any machine — a >1% delta
    # is a genuine protocol/model change, never noise. On an intentional
    # change, refresh the baseline:
    #   cargo run --release -p fompi-bench --bin perfgate
    #   cp BENCH_PR9.json results/BENCH_PR9_baseline.json
    echo "== perfgate: virtual-time regression check (tolerance 1%) =="
    local rc=0
    "${SCRUB[@]}" FOMPI_SEED=1 \
        cargo run --offline --release -q -p fompi-bench --bin perfgate -- \
        --check results/BENCH_PR9_baseline.json || rc=$?
    explain_gate perfgate "$rc"
}

stage_fleet() {
    # Process-based cross-backend sweep: the orchestrator spawns the
    # release agent binaries, so build them all first (cargo run --bin
    # fleet alone would only build the orchestrator).
    cargo build --offline --release -q -p fompi-bench
    echo "== fleet smoke sweep: summary byte-diff =="
    "${SCRUB[@]}" target/release/fleet --smoke >/dev/null
    git diff --exit-code -- results/fleet_summary.json

    echo "== fleet gate vs results/fleet_baseline.json =="
    local rc=0
    "${SCRUB[@]}" target/release/fleet --gate || rc=$?
    explain_gate "fleet gate" "$rc"

    # Gate self-test: a synthetic 10% slowdown must fail with exit 2 and
    # name the regressed metrics — proof the gate can actually fire.
    echo "== fleet gate self-test: synthetic 10% slowdown must exit 2 =="
    rc=0
    "${SCRUB[@]}" target/release/fleet --gate --slowdown 10 >/dev/null 2>&1 || rc=$?
    if [[ "$rc" != 2 ]]; then
        echo "fleet gate self-test: expected exit 2 on a synthetic slowdown, got $rc" >&2
        return 1
    fi
    echo "fleet gate self-test: regression detected as expected."
}

stage_mc() {
    # Exhaustive interleaving model checker over the one-sided protocol
    # kernels. Three gates in one stage:
    #   1. the integration tests run every model program to exhaustion at
    #      the default bounds (zero violations, `complete=true`) and are
    #      the *mutation* gate — the broken-credit-return and
    #      dropped-publish-CAS mutants must each yield a replayable
    #      counterexample;
    #   2. replay round-trip: FOMPI_MC_REPLAY must reproduce a violation
    #      and its per-rank virtual clocks bit-for-bit (in-process and
    #      out-of-process);
    #   3. results/mc_summary.csv regenerates byte-identically —
    #      exploration counts and counterexample schedules are exact
    #      functions of the DPOR walk, so any drift is a real change.
    echo "== mc: exhaustive model + mutation gate (fompi-mc tests) =="
    "${SCRUB[@]}" cargo test --offline --release -q -p fompi-mc
    echo "== results determinism: mc_summary.csv =="
    "${SCRUB[@]}" cargo run --offline --release -q -p fompi-mc --bin mc_summary >/dev/null
    git diff --exit-code -- results/mc_summary.csv
}

stage_sanitize() {
    # Opt-in because it needs a nightly toolchain; each tool degrades to a
    # loud skip when unavailable so the stage is safe to run anywhere.
    #
    # Documented skip-list (why not the whole workspace):
    #   - TSan runs the fompi-fabric unit tests only: the notify ring,
    #     striped horizons, batch counters, and shim locks are where the
    #     hand-rolled atomics live. Full-workspace soak under TSan is ~50x
    #     and times out CI.
    #   - Miri runs fompi-fabric too (raw segment pointers, Vyukov ring);
    #     the upper crates are safe Rust over these primitives — including
    #     fompi-mc, whose scheduler gate is std Mutex/Condvar only (its
    #     interleaving coverage comes from the mc stage, not sanitizers).
    #   - Loom models are cfg-gated (`--cfg loom`) and need loom as a
    #     local dev-dependency; the workspace is dependency-free, so they
    #     run on developer machines, not here. Current models: the notify
    #     ring/stripes (fompi-fabric) and the mesh batched credit return
    #     (fompi-rmc, `cargo test -p fompi-rmc ... loom_`).
    if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
        echo "sanitize: no nightly toolchain installed; skipping (rustup toolchain install nightly)"
        return 0
    fi
    local host
    host=$(rustc -vV | sed -n 's/^host: //p')
    echo "== ThreadSanitizer: fompi-fabric unit tests =="
    if rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src (installed)'; then
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test --offline -Zbuild-std --target "$host" \
            -p fompi-fabric --lib -q
    else
        echo "sanitize: nightly rust-src missing; skipping TSan (rustup component add rust-src --toolchain nightly)"
    fi
    echo "== Miri: fompi-fabric unit tests =="
    if rustup component list --toolchain nightly 2>/dev/null | grep -q 'miri (installed)'; then
        # Seeded PRNG + virtual clock means Miri needs no -Zmiri-disable flags.
        cargo +nightly miri test --offline -p fompi-fabric --lib -q
    else
        echo "sanitize: nightly miri missing; skipping (rustup component add miri --toolchain nightly)"
    fi
    echo "sanitize stage done."
}

stage_nightly() {
    # Chaos fleet sweep: every agent re-run under an armed seeded fault
    # plan; tail-latency-under-failure lands in results/fleet_chaos.json
    # (the workflow uploads it as the nightly artifact).
    cargo build --offline --release -q -p fompi-bench
    echo "== fleet chaos sweep =="
    "${SCRUB[@]}" target/release/fleet --chaos

    # Long soak: keep feeding fresh seed batches until the deadline.
    # Protocol::ALL now includes rmc_channel — the ring-shaped credit
    # protocol soaks under every fault plan alongside the older nine.
    echo "== soak long mode (${SOAK_SECONDS:-600}s) =="
    SOAK_SECONDS="${SOAK_SECONDS:-600}" \
        cargo run --offline --release -q -p fompi-bench --bin soak
}

# ---------------------------------------------------------------- driver
usage() {
    sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
}

mode="${1:-all}"
case "$mode" in
--fix)
    cargo fmt --all
    exit 0
    ;;
quick)
    run_stage fmt stage_fmt
    run_stage clippy stage_clippy
    run_stage tests stage_tests
    timing_summary
    echo "quick tier passed."
    ;;
lint)
    run_stage fmt stage_fmt
    run_stage clippy stage_clippy
    ;;
test)
    run_stage tests stage_tests
    ;;
determinism)
    run_stage determinism stage_determinism
    ;;
perfgate)
    run_stage perfgate stage_perfgate
    ;;
fleet)
    run_stage fleet stage_fleet
    ;;
mc)
    run_stage mc stage_mc
    ;;
sanitize)
    run_stage sanitize stage_sanitize
    ;;
nightly)
    run_stage nightly stage_nightly
    timing_summary
    ;;
all)
    run_stage fmt stage_fmt
    run_stage clippy stage_clippy
    run_stage tests stage_tests
    run_stage determinism stage_determinism
    run_stage perfgate stage_perfgate
    run_stage fleet stage_fleet
    run_stage mc stage_mc
    timing_summary
    echo "CI gate passed."
    ;;
*)
    echo "ci.sh: unknown mode '$mode'" >&2
    usage >&2
    exit 1
    ;;
esac
