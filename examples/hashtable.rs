//! Distributed hashtable shoot-out (§4.1 / Figure 7a).
//!
//! ```text
//! cargo run --release --example hashtable [ranks] [inserts_per_rank]
//! ```
//!
//! Runs the same random-insert workload through the three backends the
//! paper compares — foMPI RMA atomics, UPC-style atomics and MPI-1 active
//! messages — verifies that every element landed, and reports the insert
//! rates.

use fompi_apps::hashtable::{run_mpi1, run_rma, run_upc, HtConfig, HtResult};
use fompi_msg::{Comm, MsgEngine};
use fompi_runtime::Universe;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let inserts: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let cfg = HtConfig {
        inserts_per_rank: inserts,
        table_slots: (p * inserts * 2).next_power_of_two(),
        heap_cells: p * inserts,
        seed: 42,
    };
    println!("== distributed hashtable: {p} ranks x {inserts} inserts ==\n");

    let report = |name: &str, results: &[HtResult]| {
        let total: usize = results.iter().map(|r| r.local_elements).sum();
        let t = results.iter().map(|r| r.time_ns).fold(0.0, f64::max);
        let rate = (p * inserts) as f64 / t * 1e3; // million inserts/s
        println!(
            "{name:<22} {rate:>9.2} M inserts/s   ({total} elements stored, {} expected)",
            p * inserts
        );
        assert_eq!(total, p * inserts, "{name}: elements lost!");
        rate
    };

    let (rma, fabric) = Universe::new(p).node_size(4).launch(|ctx| run_rma(ctx, &cfg));
    let r_rma = report("foMPI RMA (CAS/FAA)", &rma);

    // With FOMPI_TELEMETRY=1, dump the RMA backend's event trace for
    // Perfetto (ui.perfetto.dev) alongside the per-class summary.
    let tel = fabric.telemetry();
    if tel.enabled() {
        println!("\n{}", tel.report());
        let path = "results/hashtable_trace.json";
        fompi_fabric::telemetry::perfetto::export_trace(tel, path).expect("write trace");
        println!("Perfetto trace written to {path} (open in ui.perfetto.dev)");
    }

    let upc = Universe::new(p).node_size(4).run(|ctx| run_upc(ctx, &cfg));
    let r_upc = report("UPC atomics", &upc);

    let engine = MsgEngine::new(p);
    let mpi = Universe::new(p).node_size(4).run(move |ctx| {
        let comm = Comm::attach(ctx, &engine);
        run_mpi1(ctx, &comm, &cfg)
    });
    let r_mpi = report("MPI-1 active messages", &mpi);

    println!("\nspeedup of RMA over MPI-1: {:.2}x", r_rma / r_mpi);
    println!("RMA vs UPC:                {:.2}x", r_rma / r_upc);
}
