//! Distributed hashtable shoot-out (§4.1 / Figure 7a).
//!
//! ```text
//! cargo run --release --example hashtable [ranks] [inserts_per_rank]
//! ```
//!
//! Runs the same random-insert workload through the three backends the
//! paper compares — foMPI RMA atomics, UPC-style atomics and MPI-1 active
//! messages — verifies that every element landed, and reports the insert
//! rates.

use fompi_apps::hashtable::{run_mpi1, run_notified, run_rma, run_upc, HtConfig, HtResult};
use fompi_msg::{Comm, MsgEngine};
use fompi_runtime::Universe;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let inserts: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let cfg = HtConfig {
        inserts_per_rank: inserts,
        table_slots: (p * inserts * 2).next_power_of_two(),
        heap_cells: p * inserts,
        seed: 42,
    };
    println!("== distributed hashtable: {p} ranks x {inserts} inserts ==\n");

    let report = |name: &str, results: &[HtResult]| {
        let total: usize = results.iter().map(|r| r.local_elements).sum();
        let t = results.iter().map(|r| r.time_ns).fold(0.0, f64::max);
        let rate = (p * inserts) as f64 / t * 1e3; // million inserts/s
        println!(
            "{name:<22} {rate:>9.2} M inserts/s   ({total} elements stored, {} expected)",
            p * inserts
        );
        assert_eq!(total, p * inserts, "{name}: elements lost!");
        rate
    };

    let (rma, _) = Universe::new(p).node_size(4).launch(|ctx| run_rma(ctx, &cfg));
    let r_rma = report("foMPI RMA (CAS/FAA)", &rma);

    let (notified, fabric) = Universe::new(p)
        .node_size(4)
        .notify_depth(2 * inserts)
        .launch(|ctx| run_notified(ctx, &cfg));
    report("notified (owner-computes)", &notified);

    // With FOMPI_TELEMETRY=1, dump the notified backend's event trace for
    // Perfetto (ui.perfetto.dev) alongside the per-class summary: each
    // insert reads as one flow arc from the origin's notified put to the
    // owner's notify-consume span.
    let tel = fabric.telemetry();
    if tel.enabled() {
        println!("\n{}", tel.report());
        let path = "results/hashtable_trace.json";
        fompi_fabric::telemetry::perfetto::export_trace(tel, path).expect("write trace");
        println!("Perfetto trace written to {path} (open in ui.perfetto.dev)");
    }
    // FOMPI_METRICS=1 adds the tail-quantile snapshot; FOMPI_PROFILE=sample
    // (or full) adds the wall-clock per-op profile.
    if fabric.metrics_enabled() {
        let snap = fompi_fabric::metrics_snapshot(&fabric);
        println!("\n{}", snap.to_prometheus());
        println!("metrics json: {}", snap.to_json_line());
    }
    if fabric.profiler().mode() != fompi_fabric::ProfileMode::Off {
        println!("\n{}", fabric.profiler().report());
    }

    let upc = Universe::new(p).node_size(4).run(|ctx| run_upc(ctx, &cfg));
    let r_upc = report("UPC atomics", &upc);

    let engine = MsgEngine::new(p);
    let mpi = Universe::new(p).node_size(4).run(move |ctx| {
        let comm = Comm::attach(ctx, &engine);
        run_mpi1(ctx, &comm, &cfg)
    });
    let r_mpi = report("MPI-1 active messages", &mpi);

    println!("\nspeedup of RMA over MPI-1: {:.2}x", r_rma / r_mpi);
    println!("RMA vs UPC:                {:.2}x", r_rma / r_upc);
}
