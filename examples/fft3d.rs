//! 3-D FFT with communication/computation overlap (§4.3 / Figure 7c).
//!
//! ```text
//! cargo run --release --example fft3d [ranks] [grid_edge]
//! ```
//!
//! Transforms an n³ complex grid with a z-slab decomposition, comparing the
//! blocking MPI-1 exchange against the overlapped RMA and UPC slab
//! pipelines, and verifies all three against a serial FFT.

use fompi_apps::fft::{self, FftConfig};
use fompi_msg::{Comm, MsgEngine};
use fompi_runtime::Universe;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    assert!(n.is_power_of_two() && n.is_multiple_of(p), "need power-of-two n divisible by p");
    let cfg = FftConfig { n, seed: 2026 };
    println!("== 3-D FFT: {n}^3 grid on {p} ranks ==\n");

    let engine = MsgEngine::new(p);
    let mpi = Universe::new(p).node_size(4).run(move |ctx| {
        let c = Comm::attach(ctx, &engine);
        fft::run_mpi1(ctx, &c, &cfg, false)
    });
    let rma = Universe::new(p).node_size(4).run(move |ctx| fft::run_rma(ctx, &cfg));
    let upc = Universe::new(p).node_size(4).run(move |ctx| fft::run_upc(ctx, &cfg));

    // Verify the distributed results against each other (all variants do
    // identical arithmetic) and spot-check against the serial reference.
    let reference = fft::fft3d_serial(&cfg);
    let nxl = n / p;
    for (rank, res) in rma.iter().enumerate() {
        for (i, &got) in res.local_out.iter().enumerate().step_by(97) {
            let z = i / (n * nxl);
            let y = (i / nxl) % n;
            let xl = i % nxl;
            let want = reference[(z * n + y) * n + rank * nxl + xl];
            assert!(
                (got.re - want.re).abs() < 1e-6 && (got.im - want.im).abs() < 1e-6,
                "RMA result mismatch at rank {rank} index {i}"
            );
        }
        assert_eq!(res.local_out, mpi[rank].local_out, "MPI-1 differs at rank {rank}");
        assert_eq!(res.local_out, upc[rank].local_out, "UPC differs at rank {rank}");
    }

    let gf = |rs: &[fft::FftResult]| {
        let t = rs.iter().map(|r| r.time_ns).fold(0.0, f64::max);
        (fft::fft_flops(n * n * n) / t, t / 1e3)
    };
    let (g_mpi, t_mpi) = gf(&mpi);
    let (g_rma, t_rma) = gf(&rma);
    let (g_upc, t_upc) = gf(&upc);
    println!("MPI-1 (bulk exchange) : {g_mpi:>8.3} GFlop/s  ({t_mpi:.1} us)");
    println!("UPC   (overlap slabs) : {g_upc:>8.3} GFlop/s  ({t_upc:.1} us)");
    println!("foMPI (overlap slabs) : {g_rma:>8.3} GFlop/s  ({t_rma:.1} us)");
    println!("\nfoMPI speedup over MPI-1: {:+.1}%", (g_rma / g_mpi - 1.0) * 100.0);
    println!("results verified against serial FFT — OK");
}
