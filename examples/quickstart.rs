//! Quickstart: the MPI-3 RMA API in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Spawns 8 ranks (4 per simulated node), walks through every window
//! flavour and synchronisation mode, and prints what happened — including
//! each rank's *virtual time*, the calibrated Blue-Waters-like cost the
//! operation would have had on the paper's hardware.

use fompi::{LockType, MpiOp, NumKind, Win};
use fompi_runtime::{Group, Universe};

fn main() {
    let p = 8;
    println!("== foMPI-rs quickstart: {p} ranks, 4 per node ==\n");
    let results = Universe::new(p).node_size(4).run(|ctx| {
        let me = ctx.rank();
        let pn = p as u32;

        // 1. Allocated window: symmetric heap, O(1) metadata (§2.2).
        let win = Win::allocate(ctx, 4096, 1).expect("allocate window");

        // 2. Fence epoch: everyone puts a greeting into its right
        //    neighbour (active target, §2.3).
        win.fence().expect("fence");
        let msg = format!("hello from rank {me}!");
        win.put(msg.as_bytes(), (me + 1) % pn, 0).expect("put");
        win.fence().expect("fence");
        let mut got = vec![0u8; 32];
        win.read_local(0, &mut got);
        let from_left = String::from_utf8_lossy(&got).trim_end_matches('\0').to_string();
        // Close the active-target epoch before switching to passive mode
        // (MPI semantics: a fence without NOSUCCEED keeps the epoch open).
        win.fence_assert(fompi::ASSERT_NOSUCCEED).expect("closing fence");

        // 3. Passive target: rank 0's window cell is a global counter that
        //    everyone bumps atomically (lock_all + fetch_and_op, §2.4).
        win.lock_all().expect("lock_all");
        let mut old = [0u8; 8];
        win.fetch_and_op(&1u64.to_le_bytes(), &mut old, NumKind::U64, MpiOp::Sum, 0, 1024)
            .expect("fetch_and_op");
        win.flush(0).expect("flush");
        win.unlock_all().expect("unlock_all");

        // 4. PSCW: synchronise only with the two ring neighbours (§2.3,
        //    Figure 2) — O(k), not O(p).
        let ring = Group::new([(me + pn - 1) % pn, (me + 1) % pn]);
        win.post(&ring).expect("post");
        win.start(&ring).expect("start");
        win.put(&me.to_le_bytes(), (me + 1) % pn, 2048).expect("ring put");
        win.complete().expect("complete");
        win.wait().expect("wait");

        // 5. Exclusive lock for a read-modify-write on a neighbour.
        let victim = (me + 3) % pn;
        win.lock(LockType::Exclusive, victim).expect("lock");
        let mut cell = [0u8; 8];
        win.get(&mut cell, victim, 1032).expect("get");
        win.flush(victim).expect("flush");
        let v = u64::from_le_bytes(cell) + me as u64;
        win.put(&v.to_le_bytes(), victim, 1032).expect("put");
        win.unlock(victim).expect("unlock");

        ctx.barrier();
        let mut counter = [0u8; 8];
        win.read_local(1024, &mut counter);
        (from_left, u64::from_le_bytes(counter), ctx.now())
    });

    for (rank, (greeting, counter, t)) in results.iter().enumerate() {
        println!(
            "rank {rank}: received {greeting:?}   counter={counter}   virtual time {:.1} us",
            t / 1e3
        );
    }
    let total: u64 = results[0].1;
    println!("\nglobal counter at rank 0: {total} (expected {p})");
    assert_eq!(total, p as u64);
    println!("quickstart OK");
}
