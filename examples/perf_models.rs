//! The paper's §3 performance models as a decision tool (§6).
//!
//! ```text
//! cargo run --release --example perf_models
//! ```
//!
//! Prints the closed-form cost functions and demonstrates the paper's
//! example use: choosing Fence vs PSCW synchronisation from
//! `Pfence(p) > Ppost(k) + Pcomplete(k) + Pstart + Pwait`.

use fompi::perf::{overhead, PaperModel};

fn main() {
    let m = PaperModel::default();
    println!("== foMPI performance models (Blue Waters constants, §3) ==\n");
    println!("communication:");
    for s in [8usize, 64, 512, 4096, 32768, 262144] {
        println!(
            "  s = {s:>7} B:  Pput = {:>9.0} ns   Pget = {:>9.0} ns   Pacc,sum = {:>9.0} ns   Pacc,min = {:>9.0} ns",
            m.put(s),
            m.get(s),
            m.acc_sum(s),
            m.acc_min(s)
        );
    }
    println!("\nsynchronisation:");
    for p in [2usize, 64, 4096, 262144] {
        println!("  p = {p:>7}:  Pfence = {:>9.0} ns", m.fence(p));
    }
    println!(
        "  PSCW (k neighbours): Ppost = Pcomplete = {:.0}·k ns, Pstart = {:.0} ns, Pwait = {:.0} ns",
        m.pscw_per_neighbor, m.start, m.wait
    );
    println!(
        "  locks: excl {:.0} ns, shared/lock_all {:.0} ns, unlock {:.0} ns, flush {:.0} ns, sync {:.0} ns",
        m.lock_excl, m.lock_shared, m.unlock, m.flush, m.sync
    );
    println!(
        "\nfast-path overheads: put/get ≈ {} instructions ({:.0} ns), flush ≈ {} instructions ({:.0} ns)",
        overhead::PUT_GET_INSTRUCTIONS,
        overhead::put_get_ns(),
        overhead::FLUSH_INSTRUCTIONS,
        overhead::flush_ns()
    );

    println!("\n== §6's example: pick Fence or PSCW ==");
    println!("{:>9} {:>5}  recommendation", "p", "k");
    for (p, k) in [(64, 2), (1024, 2), (1024, 16), (65536, 4), (65536, 48)] {
        let pscw = m.prefer_pscw(p, k);
        println!(
            "{p:>9} {k:>5}  {}  (Pfence = {:.1} us, PSCW cycle = {:.1} us)",
            if pscw { "PSCW  " } else { "Fence " },
            m.fence(p) / 1e3,
            m.pscw_round(k) / 1e3
        );
    }
}
