//! MILC proxy: 4-D lattice CG with halo exchange (§4.4 / Figure 8).
//!
//! ```text
//! cargo run --release --example milc [ranks] [iters]
//! ```
//!
//! Weak-scaling-style run of the conjugate-gradient solver with the three
//! communication backends; prints per-iteration times, the residual
//! history, and the foMPI-vs-MPI-1 improvement (the paper reports
//! 5.3%–15.2% full-application gains).

use fompi_apps::milc::{self, MilcConfig};
use fompi_msg::{Comm, MsgEngine};
use fompi_runtime::Universe;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let iters: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let cfg = MilcConfig { local: [4, 4, 4, 8], iters, seed: 11 };
    println!("== MILC proxy: {p} ranks, local lattice {:?}, {iters} CG iterations ==", cfg.local);
    println!("   process grid: {:?}\n", milc::grid_dims(p));

    let engine = MsgEngine::new(p);
    let mpi = Universe::new(p).node_size(4).run(move |ctx| {
        let c = Comm::attach(ctx, &engine);
        milc::run_mpi1(ctx, &c, &cfg)
    });
    let rma = Universe::new(p).node_size(4).run(move |ctx| milc::run_rma(ctx, &cfg));
    let upc = Universe::new(p).node_size(4).run(move |ctx| milc::run_upc(ctx, &cfg));

    println!("residual history (foMPI backend):");
    for (i, r) in rma[0].residuals.iter().enumerate() {
        println!("  iter {:>2}: |r| = {r:.6}", i + 1);
    }
    // The RMA and UPC backends share the reduce order: bitwise equal.
    assert_eq!(rma[0].residuals, upc[0].residuals, "RMA vs UPC drifted");
    // MPI-1 reduces in tree order: equal to FP reassociation.
    for (a, b) in rma[0].residuals.iter().zip(&mpi[0].residuals) {
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "MPI-1 vs RMA drifted");
    }

    let t = |rs: &[milc::MilcResult]| rs.iter().map(|r| r.time_ns).fold(0.0, f64::max);
    let (t_mpi, t_rma, t_upc) = (t(&mpi), t(&rma), t(&upc));
    println!("\nsolver time   MPI-1: {:>9.1} us", t_mpi / 1e3);
    println!("              UPC  : {:>9.1} us", t_upc / 1e3);
    println!("              foMPI: {:>9.1} us", t_rma / 1e3);
    println!("\nfoMPI improvement over MPI-1: {:+.1}%", (t_mpi / t_rma - 1.0) * 100.0);
    println!("(paper's full-application annotations: +5.3% ... +15.2%)");
}
