//! Dynamic Sparse Data Exchange protocols (§4.2 / Figure 7b).
//!
//! ```text
//! cargo run --release --example dsde [ranks] [neighbors]
//! ```
//!
//! Every rank sends 8 bytes to `k` random targets; nobody knows what it
//! will receive. Compares the four protocols from the paper and verifies
//! conservation (p·k messages sent = p·k received, all at the intended
//! destination).

use fompi::Win;
use fompi_apps::dsde;
use fompi_msg::{Comm, MsgEngine};
use fompi_runtime::Universe;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    println!("== DSDE: {p} ranks, k = {k} random neighbours each ==\n");

    let check = |name: &str, times: Vec<f64>, received: usize| {
        let t = times.iter().cloned().fold(0.0, f64::max) / 1e3;
        println!("{name:<28} {t:>10.1} us   ({received} messages delivered)");
        assert_eq!(received, p * k, "{name}: messages lost!");
        t
    };

    let engine = MsgEngine::new(p);
    let e = engine.clone();
    let res = Universe::new(p).node_size(4).run(move |ctx| {
        let c = Comm::attach(ctx, &e);
        let r = dsde::run_alltoall(ctx, &c, k, 7);
        (r.time_ns, r.received.len())
    });
    let t_a2a = check("alltoall", res.iter().map(|r| r.0).collect(), res.iter().map(|r| r.1).sum());

    let e = engine.clone();
    let res = Universe::new(p).node_size(4).run(move |ctx| {
        let c = Comm::attach(ctx, &e);
        let r = dsde::run_reduce_scatter(ctx, &c, k, 7);
        (r.time_ns, r.received.len())
    });
    check(
        "reduce_scatter + sends",
        res.iter().map(|r| r.0).collect(),
        res.iter().map(|r| r.1).sum(),
    );

    let e = engine.clone();
    let res = Universe::new(p).node_size(4).run(move |ctx| {
        let c = Comm::attach(ctx, &e);
        let r = dsde::run_nbx(ctx, &c, k, 7, 3);
        (r.time_ns, r.received.len())
    });
    let t_nbx = check(
        "NBX (nonblocking consensus)",
        res.iter().map(|r| r.0).collect(),
        res.iter().map(|r| r.1).sum(),
    );

    let res = Universe::new(p).node_size(4).run(move |ctx| {
        let win = Win::allocate(ctx, dsde::rma_win_bytes(p), 1).expect("win");
        let r = dsde::run_rma(ctx, &win, k, 7);
        (r.time_ns, r.received.len())
    });
    let t_rma = check(
        "foMPI RMA accumulate",
        res.iter().map(|r| r.0).collect(),
        res.iter().map(|r| r.1).sum(),
    );

    println!("\nRMA vs alltoall: {:.1}x faster", t_a2a / t_rma);
    println!("RMA vs NBX:      {:.2}x", t_nbx / t_rma);
}
