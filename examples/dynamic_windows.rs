//! Dynamic windows: attach/detach and the two cache protocols (§2.2).
//!
//! ```text
//! cargo run --release --example dynamic_windows
//! ```
//!
//! A 4-rank demo of `MPI_Win_create_dynamic`: rank 1 grows and shrinks its
//! exposed memory while rank 0 keeps communicating; the cached
//! region-table protocol resolves addresses one-sidedly. Run twice — with
//! the default id-counter check and with the notify-based invalidation —
//! and compare per-access costs.

use fompi::{LockType, Win, WinConfig};
use fompi_runtime::Universe;

fn demo(notify: bool) -> (f64, f64) {
    let cfg = WinConfig { dyn_notify: notify, ..WinConfig::default() };
    let results = Universe::new(4).node_size(2).run(move |ctx| {
        let win = Win::create_dynamic_cfg(ctx, cfg.clone()).unwrap();
        // Rank 1 attaches two regions and publishes their addresses.
        let (a1, a2) = if ctx.rank() == 1 {
            (win.attach(1024).unwrap(), win.attach(2048).unwrap())
        } else {
            (0, 0)
        };
        let addrs = ctx.allgather(&[a1.to_le_bytes(), a2.to_le_bytes()].concat());
        let r1 = u64::from_le_bytes(addrs[1][0..8].try_into().unwrap());
        let r2 = u64::from_le_bytes(addrs[1][8..16].try_into().unwrap());
        let mut per_access = 0.0;
        let mut detach_cost = 0.0;
        if ctx.rank() == 0 {
            win.lock(LockType::Shared, 1).unwrap();
            // Warm the cache, then measure steady-state access cost.
            win.put(&[1u8; 16], 1, r1 as usize).unwrap();
            win.flush(1).unwrap();
            let t0 = ctx.now();
            for i in 0..32 {
                win.put(&[2u8; 16], 1, r2 as usize + i * 16).unwrap();
            }
            win.flush(1).unwrap();
            per_access = (ctx.now() - t0) / 32.0;
            win.unlock(1).unwrap();
        }
        ctx.barrier();
        if ctx.rank() == 1 {
            let t0 = ctx.now();
            win.detach(r1).unwrap();
            detach_cost = ctx.now() - t0;
            // Verify region 2 still works locally.
            let mut b = [0u8; 16];
            win.region_read(r2, 0, &mut b).unwrap();
            assert_eq!(b[0], 2);
        }
        ctx.barrier();
        // After detach, writes to the gone region must fail cleanly.
        if ctx.rank() == 0 {
            win.lock(LockType::Shared, 1).unwrap();
            assert!(win.put(&[9u8; 4], 1, r1 as usize).is_err());
            win.unlock(1).unwrap();
        }
        ctx.barrier();
        (per_access, detach_cost)
    });
    (results[0].0, results[1].1)
}

fn main() {
    println!("== dynamic windows: id-counter vs notify cache protocols ==\n");
    let (acc_id, det_id) = demo(false);
    let (acc_nt, det_nt) = demo(true);
    println!("                      per cached access     detach");
    println!("id-counter check   : {acc_id:>12.0} ns    {det_id:>9.0} ns");
    println!("notify protocol    : {acc_nt:>12.0} ns    {det_nt:>9.0} ns");
    println!(
        "\nnotify makes accesses {:.1}x cheaper but detach {:.1}x costlier —",
        acc_id / acc_nt,
        (det_nt / det_id).max(1.0)
    );
    println!("the §2.2 trade-off: \"suboptimal for frequent detach operations\".");
}
