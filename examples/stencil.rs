//! 2-D heat diffusion with PSCW neighbour synchronisation.
//!
//! ```text
//! cargo run --release --example stencil [ranks] [n] [steps]
//! ```
//!
//! The general-active-target mode's sweet spot (§2.3, Figure 6c): each rank
//! synchronises with its *two* neighbours only — post/start/complete/wait
//! is O(k), so the sync cost stays flat as the job grows, unlike a global
//! fence. The domain is an n×n grid split into row bands; every step
//! exchanges boundary rows via RMA puts inside a PSCW epoch, then applies
//! a Jacobi update. The distributed result is verified against a serial
//! run.

use fompi::Win;
use fompi_runtime::{Group, Universe};

fn serial(n: usize, steps: usize, init: impl Fn(usize, usize) -> f64) -> Vec<f64> {
    let mut cur: Vec<f64> = (0..n * n).map(|i| init(i / n, i % n)).collect();
    let mut next = cur.clone();
    for _ in 0..steps {
        for r in 0..n {
            for c in 0..n {
                let up = if r > 0 { cur[(r - 1) * n + c] } else { 0.0 };
                let down = if r + 1 < n { cur[(r + 1) * n + c] } else { 0.0 };
                let left = if c > 0 { cur[r * n + c - 1] } else { 0.0 };
                let right = if c + 1 < n { cur[r * n + c + 1] } else { 0.0 };
                next[r * n + c] = 0.25 * (up + down + left + right);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

fn init(r: usize, c: usize) -> f64 {
    ((r * 31 + c * 7) % 17) as f64 - 8.0
}

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);
    assert!(n.is_multiple_of(p), "n must be divisible by p");
    let rows = n / p;
    println!("== 2-D Jacobi stencil: {n}x{n} grid, {p} ranks x {rows} rows, {steps} steps ==\n");

    let (results, fabric) = Universe::new(p).node_size(4).launch(move |ctx| {
        let me = ctx.rank() as usize;
        // Window: [halo_top n][band rows*n][halo_bottom n] doubles.
        let win = Win::allocate(ctx, (rows + 2) * n * 8, 8).unwrap();
        let mut cur = vec![0.0f64; rows * n];
        for r in 0..rows {
            for c in 0..n {
                cur[r * n + c] = init(me * rows + r, c);
            }
        }
        let mut next = cur.clone();
        let up = if me > 0 { Some(me as u32 - 1) } else { None };
        let down = if me + 1 < p { Some(me as u32 + 1) } else { None };
        let neighbors: Vec<u32> = up.iter().chain(down.iter()).copied().collect();
        let group = Group::new(neighbors.clone());
        let t0 = ctx.now();
        for _ in 0..steps {
            // Exchange boundary rows: my top row → up's bottom halo, my
            // bottom row → down's top halo.
            win.post(&group).unwrap();
            win.start(&group).unwrap();
            let row_bytes =
                |row: &[f64]| -> Vec<u8> { row.iter().flat_map(|v| v.to_le_bytes()).collect() };
            if let Some(u) = up {
                win.put(&row_bytes(&cur[0..n]), u, (1 + rows) * n).unwrap();
            }
            if let Some(d) = down {
                win.put(&row_bytes(&cur[(rows - 1) * n..rows * n]), d, 0).unwrap();
            }
            win.complete().unwrap();
            win.wait().unwrap();
            // Read halos.
            let read_row = |off: usize| -> Vec<f64> {
                let mut b = vec![0u8; n * 8];
                win.read_local(off * 8, &mut b);
                b.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
            };
            let halo_top = read_row(0);
            let halo_bot = read_row((1 + rows) * n);
            // Jacobi update.
            for r in 0..rows {
                for c in 0..n {
                    let upv = if r > 0 {
                        cur[(r - 1) * n + c]
                    } else if up.is_some() {
                        halo_top[c]
                    } else {
                        0.0
                    };
                    let dnv = if r + 1 < rows {
                        cur[(r + 1) * n + c]
                    } else if down.is_some() {
                        halo_bot[c]
                    } else {
                        0.0
                    };
                    let lv = if c > 0 { cur[r * n + c - 1] } else { 0.0 };
                    let rv = if c + 1 < n { cur[r * n + c + 1] } else { 0.0 };
                    next[r * n + c] = 0.25 * (upv + dnv + lv + rv);
                }
            }
            std::mem::swap(&mut cur, &mut next);
            ctx.ep().charge_flops(4.0 * (rows * n) as f64);
        }
        let dt = ctx.now() - t0;
        (cur, dt)
    });

    // Verify against serial.
    let reference = serial(n, steps, init);
    let mut max_err = 0.0f64;
    for (rank, (band, _)) in results.iter().enumerate() {
        for r in 0..rows {
            for c in 0..n {
                let err = (band[r * n + c] - reference[(rank * rows + r) * n + c]).abs();
                max_err = max_err.max(err);
            }
        }
    }
    let t = results.iter().map(|(_, dt)| *dt).fold(0.0, f64::max);
    println!("completed in {:.1} us virtual time ({:.2} us/step)", t / 1e3, t / 1e3 / steps as f64);
    println!("max |error| vs serial: {max_err:e}");
    assert!(max_err < 1e-12, "distributed result diverged");
    println!("verified — OK");

    // With FOMPI_TELEMETRY=1 the fabric records every RMA and sync event;
    // dump the per-class summary and a Perfetto-loadable trace.
    let tel = fabric.telemetry();
    if tel.enabled() {
        println!("\n{}", tel.report());
        let path = "results/stencil_trace.json";
        fompi_fabric::telemetry::perfetto::export_trace(tel, path).expect("write trace");
        println!("Perfetto trace written to {path} (open in ui.perfetto.dev)");
    }
    // FOMPI_METRICS=1 adds the tail-quantile snapshot; FOMPI_PROFILE=sample
    // (or full) adds the wall-clock per-op profile.
    if fabric.metrics_enabled() {
        let snap = fompi_fabric::metrics_snapshot(&fabric);
        println!("\n{}", snap.to_prometheus());
        println!("metrics json: {}", snap.to_json_line());
    }
    if fabric.profiler().mode() != fompi_fabric::ProfileMode::Off {
        println!("\n{}", fabric.profiler().report());
    }
}
