//! Workspace-level property tests: the RMA layer against randomized
//! workloads, and cross-backend agreement of the application motifs.

use fompi::{DataType, LockType, MpiOp, NumKind, Win};
use fompi_apps::fft::{self, FftConfig};
use fompi_apps::hashtable::{self, HtConfig};
use fompi_fabric::CostModel;
use fompi_runtime::Universe;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random put/get scripts against one target behave like a local
    /// byte-array model.
    #[test]
    fn put_get_script_matches_model(
        script in proptest::collection::vec((0usize..240, proptest::collection::vec(any::<u8>(), 1..16)), 1..25)
    ) {
        let script2 = script.clone();
        let got = Universe::new(2).node_size(1).model(CostModel::free()).run(move |ctx| {
            let win = Win::allocate(ctx, 256, 1).unwrap();
            let mut model = vec![0u8; 256];
            if ctx.rank() == 0 {
                win.lock(LockType::Exclusive, 1).unwrap();
                for (off, data) in &script2 {
                    let off = (*off).min(256 - data.len());
                    win.put(data, 1, off).unwrap();
                    model[off..off + data.len()].copy_from_slice(data);
                }
                win.flush(1).unwrap();
                let mut out = vec![0u8; 256];
                win.get(&mut out, 1, 0).unwrap();
                win.flush(1).unwrap();
                win.unlock(1).unwrap();
                ctx.barrier();
                (out, model)
            } else {
                ctx.barrier();
                (Vec::new(), Vec::new())
            }
        });
        let (out, model) = &got[0];
        prop_assert_eq!(out, model);
    }

    /// Accumulate(SUM) over random element streams totals exactly,
    /// regardless of how elements are batched (atomicity property).
    #[test]
    fn accumulate_batches_commute(batches in proptest::collection::vec(1usize..8, 1..6)) {
        let b2 = batches.clone();
        let got = Universe::new(4).node_size(2).model(CostModel::free()).run(move |ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            win.fence().unwrap();
            for &n in &b2 {
                let buf: Vec<u8> = (0..n).flat_map(|_| 1u64.to_le_bytes()).collect();
                win.accumulate(&buf, NumKind::U64, MpiOp::Sum, 0, 0).unwrap();
            }
            win.fence().unwrap();
            let mut out = [0u8; 8];
            win.read_local(0, &mut out);
            u64::from_le_bytes(out)
        });
        // Each batch of n elements adds 1 to elements 0..n; element 0 gets
        // one increment per batch per rank.
        prop_assert_eq!(got[0], 4 * batches.len() as u64);
    }

    /// Typed put through arbitrary strided views delivers exactly the
    /// flattened bytes.
    #[test]
    fn typed_put_strided(count in 1usize..5, blocklen in 1usize..4, gap in 0usize..4) {
        let stride = blocklen + gap;
        let got = Universe::new(2).node_size(1).model(CostModel::free()).run(move |ctx| {
            let ty = DataType::vector(count, blocklen, stride, DataType::byte());
            let span = ty.extent();
            let win = Win::allocate(ctx, 256, 1).unwrap();
            win.fence().unwrap();
            let mut expect = Vec::new();
            if ctx.rank() == 0 {
                let src: Vec<u8> = (0..span as u8).map(|i| i.wrapping_add(5)).collect();
                let dense = DataType::contiguous(ty.size(), DataType::byte());
                win.put_typed(&src, 1, &ty, 1, 0, 1, &dense).unwrap();
                expect = ty.pack(1, &src);
            }
            win.fence().unwrap();
            let mut out = vec![0u8; count * blocklen];
            win.read_local(0, &mut out);
            ctx.barrier();
            (out, expect)
        });
        let (out, expect) = &got[0];
        // Rank 1 holds the packed bytes; rank 0 computed the expectation.
        let got1 = &got[1].0;
        prop_assert_eq!(got1, expect);
        let _ = out;
    }

    /// The hashtable conserves elements for arbitrary geometry.
    #[test]
    fn hashtable_conserves_elements(
        p in 2usize..5,
        inserts in 1usize..80,
        slots_exp in 2u32..8,
        seed in any::<u64>(),
    ) {
        let cfg = HtConfig {
            inserts_per_rank: inserts,
            table_slots: 1 << slots_exp,
            heap_cells: p * inserts + 8,
            seed,
        };
        let got = Universe::new(p)
            .node_size(2)
            .model(CostModel::free())
            .run(move |ctx| hashtable::run_rma(ctx, &cfg));
        let total: usize = got.iter().map(|r| r.local_elements).sum();
        prop_assert_eq!(total, p * inserts);
    }

    /// Distributed FFT equals the serial FFT for random seeds and sizes.
    #[test]
    fn fft_matches_serial_randomized(pexp in 1u32..3, nexp in 3u32..5, seed in any::<u64>()) {
        let p = 1usize << pexp;
        let n = 1usize << nexp;
        if n % p != 0 { return Ok(()); }
        let cfg = FftConfig { n, seed };
        let got = Universe::new(p)
            .node_size(2)
            .model(CostModel::free())
            .run(move |ctx| fft::run_rma(ctx, &cfg));
        let reference = fft::fft3d_serial(&cfg);
        let nxl = n / p;
        for (rank, res) in got.iter().enumerate() {
            for z in 0..n {
                for y in 0..n {
                    for xl in 0..nxl {
                        let a = res.local_out[(z * n + y) * nxl + xl];
                        let b = reference[(z * n + y) * n + rank * nxl + xl];
                        prop_assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
                    }
                }
            }
        }
    }
}
