//! Workspace-level randomized tests (seeded in-repo PRNG): the RMA layer
//! against randomized workloads, and cross-backend agreement of the
//! application motifs.

use fompi::{DataType, LockType, MpiOp, NumKind, Win};
use fompi_apps::fft::{self, FftConfig};
use fompi_apps::hashtable::{self, HtConfig};
use fompi_fabric::rng::Rng;
use fompi_fabric::CostModel;
use fompi_runtime::Universe;

/// Random put/get scripts against one target behave like a local
/// byte-array model.
#[test]
fn put_get_script_matches_model() {
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0x9075_0000 + case);
        let script: Vec<(usize, Vec<u8>)> = (0..rng.range(1, 25))
            .map(|_| {
                let off = rng.range(0, 240);
                let mut data = vec![0u8; rng.range(1, 16)];
                rng.fill_bytes(&mut data);
                (off, data)
            })
            .collect();
        let script2 = script.clone();
        let got = Universe::new(2).node_size(1).model(CostModel::free()).run(move |ctx| {
            let win = Win::allocate(ctx, 256, 1).unwrap();
            let mut model = vec![0u8; 256];
            if ctx.rank() == 0 {
                win.lock(LockType::Exclusive, 1).unwrap();
                for (off, data) in &script2 {
                    let off = (*off).min(256 - data.len());
                    win.put(data, 1, off).unwrap();
                    model[off..off + data.len()].copy_from_slice(data);
                }
                win.flush(1).unwrap();
                let mut out = vec![0u8; 256];
                win.get(&mut out, 1, 0).unwrap();
                win.flush(1).unwrap();
                win.unlock(1).unwrap();
                ctx.barrier();
                (out, model)
            } else {
                ctx.barrier();
                (Vec::new(), Vec::new())
            }
        });
        let (out, model) = &got[0];
        assert_eq!(out, model, "case {case}");
    }
}

/// Accumulate(SUM) over random element streams totals exactly, regardless
/// of how elements are batched (atomicity property).
#[test]
fn accumulate_batches_commute() {
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0xACC0_0000 + case);
        let batches: Vec<usize> = (0..rng.range(1, 6)).map(|_| rng.range(1, 8)).collect();
        let b2 = batches.clone();
        let got = Universe::new(4).node_size(2).model(CostModel::free()).run(move |ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            win.fence().unwrap();
            for &n in &b2 {
                let buf: Vec<u8> = (0..n).flat_map(|_| 1u64.to_le_bytes()).collect();
                win.accumulate(&buf, NumKind::U64, MpiOp::Sum, 0, 0).unwrap();
            }
            win.fence().unwrap();
            let mut out = [0u8; 8];
            win.read_local(0, &mut out);
            u64::from_le_bytes(out)
        });
        // Each batch of n elements adds 1 to elements 0..n; element 0 gets
        // one increment per batch per rank.
        assert_eq!(got[0], 4 * batches.len() as u64, "case {case}");
    }
}

/// Typed put through arbitrary strided views delivers exactly the
/// flattened bytes.
#[test]
fn typed_put_strided() {
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0x7F9E_D000 + case);
        let count = rng.range(1, 5);
        let blocklen = rng.range(1, 4);
        let gap = rng.range(0, 4);
        let stride = blocklen + gap;
        let got = Universe::new(2).node_size(1).model(CostModel::free()).run(move |ctx| {
            let ty = DataType::vector(count, blocklen, stride, DataType::byte());
            let span = ty.extent();
            let win = Win::allocate(ctx, 256, 1).unwrap();
            win.fence().unwrap();
            let mut expect = Vec::new();
            if ctx.rank() == 0 {
                let src: Vec<u8> = (0..span as u8).map(|i| i.wrapping_add(5)).collect();
                let dense = DataType::contiguous(ty.size(), DataType::byte());
                win.put_typed(&src, 1, &ty, 1, 0, 1, &dense).unwrap();
                expect = ty.pack(1, &src);
            }
            win.fence().unwrap();
            let mut out = vec![0u8; count * blocklen];
            win.read_local(0, &mut out);
            ctx.barrier();
            (out, expect)
        });
        // Rank 1 holds the packed bytes; rank 0 computed the expectation.
        let expect = &got[0].1;
        let got1 = &got[1].0;
        assert_eq!(got1, expect, "case {case}");
    }
}

/// The hashtable conserves elements for arbitrary geometry.
#[test]
fn hashtable_conserves_elements() {
    for case in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0x4A54_0000 + case);
        let p = rng.range(2, 5);
        let inserts = rng.range(1, 80);
        let slots_exp = rng.range(2, 8) as u32;
        let seed = rng.next_u64();
        let cfg = HtConfig {
            inserts_per_rank: inserts,
            table_slots: 1 << slots_exp,
            heap_cells: p * inserts + 8,
            seed,
        };
        let got = Universe::new(p)
            .node_size(2)
            .model(CostModel::free())
            .run(move |ctx| hashtable::run_rma(ctx, &cfg));
        let total: usize = got.iter().map(|r| r.local_elements).sum();
        assert_eq!(total, p * inserts, "case {case}");
    }
}

/// Distributed FFT equals the serial FFT for random seeds and sizes.
#[test]
fn fft_matches_serial_randomized() {
    for case in 0..8u64 {
        let mut rng = Rng::seed_from_u64(0xFF7_0000 + case);
        let p = 1usize << rng.range(1, 3);
        let n = 1usize << rng.range(3, 5);
        if !n.is_multiple_of(p) {
            continue;
        }
        let seed = rng.next_u64();
        let cfg = FftConfig { n, seed };
        let got = Universe::new(p)
            .node_size(2)
            .model(CostModel::free())
            .run(move |ctx| fft::run_rma(ctx, &cfg));
        let reference = fft::fft3d_serial(&cfg);
        let nxl = n / p;
        for (rank, res) in got.iter().enumerate() {
            for z in 0..n {
                for y in 0..n {
                    for xl in 0..nxl {
                        let a = res.local_out[(z * n + y) * nxl + xl];
                        let b = reference[(z * n + y) * n + rank * nxl + xl];
                        assert!(
                            (a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6,
                            "case {case} rank {rank}"
                        );
                    }
                }
            }
        }
    }
}
