//! Large-thread-count stress: the protocols at the biggest scale real
//! threads allow (p = 64–96), with a free cost model so wall time stays
//! bounded. These catch races that only appear under heavy concurrency —
//! many posters per matching list, global-lock stampedes, symmetric-heap
//! collisions across many windows.

use fompi::{LockType, MpiOp, NumKind, Win, WinConfig};
use fompi_fabric::rng::root_seed_from_env;
use fompi_fabric::CostModel;
use fompi_runtime::{Group, Universe};

/// All stress universes derive their internal seeds from this one root
/// (override with `FOMPI_SEED`), so a failing schedule is replayable.
fn root() -> u64 {
    root_seed_from_env(0x5CA1E_57E55)
}

#[test]
fn fence_ring_at_64_ranks() {
    let p = 64;
    let got = Universe::new(p).node_size(32).model(CostModel::free()).seed(root()).run(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        let me = ctx.rank();
        win.fence().unwrap();
        win.put(&(me as u64 + 1).to_le_bytes(), (me + 1) % p as u32, 0).unwrap();
        win.fence().unwrap();
        let mut b = [0u8; 8];
        win.read_local(0, &mut b);
        u64::from_le_bytes(b)
    });
    for (r, &v) in got.iter().enumerate() {
        assert_eq!(v, ((r + p - 1) % p) as u64 + 1, "rank {r} (replay: FOMPI_SEED={:#x})", root());
    }
}

#[test]
fn pscw_all_to_one_fan_in_48() {
    // 47 posters against one exposure target stress the matching pool and
    // the Treiber push path far beyond the ring tests.
    let p = 48;
    let got =
        Universe::new(p).node_size(16).model(CostModel::free()).seed(root()).run(move |ctx| {
            let cfg = WinConfig { pscw_pool: 64, ..WinConfig::default() };
            let win = Win::allocate_cfg(ctx, 8 * p, 1, cfg).unwrap();
            if ctx.rank() == 0 {
                let peers = Group::new(1..p as u32);
                win.start(&peers).unwrap();
                win.complete().unwrap();
                // Everyone posted; now expose for their writes.
                win.post(&peers).unwrap();
                win.wait().unwrap();
            } else {
                win.post(&Group::new([0])).unwrap();
                win.wait().unwrap();
                win.start(&Group::new([0])).unwrap();
                win.put(&(ctx.rank() as u64).to_le_bytes(), 0, ctx.rank() as usize * 8).unwrap();
                win.complete().unwrap();
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                let mut ok = true;
                for r in 1..p {
                    let mut b = [0u8; 8];
                    win.read_local(r * 8, &mut b);
                    ok &= u64::from_le_bytes(b) == r as u64;
                }
                ok
            } else {
                true
            }
        });
    assert!(got[0], "fan-in writes lost (replay: FOMPI_SEED={:#x})", root());
}

#[test]
fn global_lock_stampede_96() {
    // 96 ranks alternating lock_all and exclusive locks on one window:
    // the two-level hierarchy must serialise cleanly with no lost updates
    // and no deadlock.
    let p = 96;
    let got = Universe::new(p).node_size(32).model(CostModel::free()).seed(root()).run(|ctx| {
        let win = Win::allocate(ctx, 16, 1).unwrap();
        for i in 0..4 {
            if (ctx.rank() as usize + i).is_multiple_of(3) {
                win.lock(LockType::Exclusive, 0).unwrap();
                let mut cur = [0u8; 8];
                win.get(&mut cur, 0, 0).unwrap();
                win.flush(0).unwrap();
                let v = u64::from_le_bytes(cur) + 1;
                win.put(&v.to_le_bytes(), 0, 0).unwrap();
                win.unlock(0).unwrap();
            } else {
                win.lock_all().unwrap();
                let mut old = [0u8; 8];
                win.fetch_and_op(&1u64.to_le_bytes(), &mut old, NumKind::U64, MpiOp::Sum, 0, 8)
                    .unwrap();
                win.flush(0).unwrap();
                win.unlock_all().unwrap();
            }
        }
        ctx.barrier();
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        win.read_local(0, &mut a);
        win.read_local(8, &mut b);
        (u64::from_le_bytes(a), u64::from_le_bytes(b))
    });
    let excl: usize = (0..p).map(|r| (0..4).filter(|i| (r + i) % 3 == 0).count()).sum();
    let shared = 4 * p - excl;
    assert_eq!(got[0].0 as usize, excl, "exclusive counter (replay: FOMPI_SEED={:#x})", root());
    assert_eq!(got[0].1 as usize, shared, "shared FAA counter (replay: FOMPI_SEED={:#x})", root());
}

#[test]
fn many_windows_symmetric_heap_no_collisions() {
    // Each rank creates 8 windows back to back; the symmetric-heap claim
    // loop must never hand two windows the same id.
    let got = Universe::new(24).node_size(8).model(CostModel::free()).seed(root()).run(|ctx| {
        let wins: Vec<Win> = (0..8).map(|_| Win::allocate(ctx, 32, 1).unwrap()).collect();
        // Use each window once to prove the registrations are distinct.
        for (i, w) in wins.iter().enumerate() {
            w.fence().unwrap();
            w.put(&[i as u8 + 1; 4], (ctx.rank() + 1) % 24, 0).unwrap();
            w.fence().unwrap();
        }
        let mut ok = true;
        for (i, w) in wins.iter().enumerate() {
            let mut b = [0u8; 4];
            w.read_local(0, &mut b);
            ok &= b[0] == i as u8 + 1;
        }
        ok
    });
    assert!(got.iter().all(|&b| b), "window id collision (replay: FOMPI_SEED={:#x})", root());
}

#[test]
fn mcs_lock_storm_64() {
    let p = 64;
    let got = Universe::new(p).node_size(32).model(CostModel::free()).seed(root()).run(|ctx| {
        let win = Win::allocate(ctx, 16, 1).unwrap();
        for _ in 0..6 {
            win.mcs_lock().unwrap();
            let mut cur = [0u8; 8];
            win.get(&mut cur, 0, 0).unwrap();
            win.flush(0).unwrap();
            let v = u64::from_le_bytes(cur) + 1;
            win.put(&v.to_le_bytes(), 0, 0).unwrap();
            win.mcs_unlock().unwrap();
        }
        ctx.barrier();
        let mut b = [0u8; 8];
        win.read_local(0, &mut b);
        u64::from_le_bytes(b)
    });
    assert_eq!(got[0], 6 * p as u64, "MCS counter (replay: FOMPI_SEED={:#x})", root());
}

#[test]
fn notified_access_flood_32() {
    // Every rank floods rank 0 with put_signal messages; the counter and
    // every payload must land.
    let p = 32;
    let msgs = 16;
    let got =
        Universe::new(p).node_size(16).model(CostModel::free()).seed(root()).run(move |ctx| {
            let win = Win::allocate(ctx, p * msgs * 8, 1).unwrap();
            win.lock_all().unwrap();
            if ctx.rank() != 0 {
                for i in 0..msgs {
                    let val = (ctx.rank() as u64) << 32 | i as u64;
                    win.put_signal(&val.to_le_bytes(), 0, (ctx.rank() as usize * msgs + i) * 8, 0)
                        .unwrap();
                }
            }
            win.unlock_all().unwrap();
            if ctx.rank() == 0 {
                win.signal_wait(0, ((p - 1) * msgs) as u64).unwrap();
                let mut ok = true;
                for r in 1..p {
                    for i in 0..msgs {
                        let mut b = [0u8; 8];
                        win.read_local((r * msgs + i) * 8, &mut b);
                        ok &= u64::from_le_bytes(b) == (r as u64) << 32 | i as u64;
                    }
                }
                ctx.barrier();
                ok
            } else {
                ctx.barrier();
                true
            }
        });
    assert!(
        got[0],
        "payload lost despite notification count reached (replay: FOMPI_SEED={:#x})",
        root()
    );
}
