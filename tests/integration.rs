//! Cross-crate integration tests: foMPI protocols exercised together with
//! the baselines, at higher rank counts and under adversarial interleaving
//! than the per-crate unit tests.

use fompi::{DataType, LockType, MpiOp, NumKind, Win, WinConfig};
use fompi_fabric::CostModel;
use fompi_msg::{Comm, MsgEngine};
use fompi_repro::fompi; // umbrella re-export sanity
use fompi_runtime::{Group, Universe};

/// A free cost model keeps the stress tests fast.
fn free() -> CostModel {
    CostModel::free()
}

#[test]
fn ring_pipeline_all_sync_modes() {
    // One window, three consecutive epochs of different modes.
    let p = 8;
    let got = Universe::new(p).node_size(4).run(|ctx| {
        let win = Win::allocate(ctx, 256, 1).unwrap();
        let me = ctx.rank();
        let pn = p as u32;
        // Epoch 1: fence.
        win.fence().unwrap();
        win.put(&[me as u8 + 1; 8], (me + 1) % pn, 0).unwrap();
        win.fence_assert(fompi::ASSERT_NOSUCCEED).unwrap();
        // Epoch 2: PSCW with the same neighbours.
        let g = Group::new([(me + pn - 1) % pn, (me + 1) % pn]);
        win.post(&g).unwrap();
        win.start(&g).unwrap();
        win.put(&[me as u8 + 31; 8], (me + 1) % pn, 8).unwrap();
        win.complete().unwrap();
        win.wait().unwrap();
        // Epoch 3: passive target.
        win.lock(LockType::Shared, (me + 1) % pn).unwrap();
        win.put(&[me as u8 + 61; 8], (me + 1) % pn, 16).unwrap();
        win.unlock((me + 1) % pn).unwrap();
        ctx.barrier();
        let mut out = [0u8; 24];
        win.read_local(0, &mut out);
        (out[0], out[8], out[16])
    });
    for (r, &(a, b, c)) in got.iter().enumerate() {
        let left = ((r + p - 1) % p) as u8;
        assert_eq!(a, left + 1, "fence epoch, rank {r}");
        assert_eq!(b, left + 31, "pscw epoch, rank {r}");
        assert_eq!(c, left + 61, "lock epoch, rank {r}");
    }
}

#[test]
fn pscw_many_epochs_reuse_pool() {
    // Repeated epochs must recycle matching-pool elements (free-storage
    // management, Figure 2c).
    let p = 6;
    let rounds = 50;
    let cfg = WinConfig { pscw_pool: 8, ..WinConfig::default() };
    let ok = Universe::new(p).node_size(3).model(free()).run(move |ctx| {
        let win = Win::allocate_cfg(ctx, 64, 1, cfg.clone()).unwrap();
        let me = ctx.rank();
        let pn = p as u32;
        let g = Group::new([(me + pn - 1) % pn, (me + 1) % pn]);
        for i in 0..rounds {
            win.post(&g).unwrap();
            win.start(&g).unwrap();
            win.put(&[i as u8; 4], (me + 1) % pn, 0).unwrap();
            win.complete().unwrap();
            win.wait().unwrap();
        }
        true
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn pscw_disjoint_groups_match_correctly() {
    // Figure 2a's scenario: process 0 runs two different epochs against
    // {1,2} and {3}; the posts must match the right starts.
    let got = Universe::new(4).node_size(2).model(free()).run(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        match ctx.rank() {
            0 => {
                win.start(&Group::new([1, 2])).unwrap();
                win.put(&[10u8; 4], 1, 0).unwrap();
                win.put(&[20u8; 4], 2, 0).unwrap();
                win.complete().unwrap();
                win.start(&Group::new([3])).unwrap();
                win.put(&[30u8; 4], 3, 0).unwrap();
                win.complete().unwrap();
            }
            1..=3 => {
                win.post(&Group::new([0])).unwrap();
                win.wait().unwrap();
            }
            _ => unreachable!(),
        }
        ctx.barrier();
        let mut b = [0u8; 4];
        win.read_local(0, &mut b);
        b[0]
    });
    assert_eq!(&got[1..], &[10, 20, 30]);
}

#[test]
fn exclusive_lock_mutual_exclusion_stress() {
    // N ranks hammer a counter under exclusive locks; the lock-protected
    // read-modify-write must never lose an update.
    let p = 8;
    let iters = 30;
    let got = Universe::new(p).node_size(4).model(free()).run(move |ctx| {
        let win = Win::allocate(ctx, 16, 1).unwrap();
        for _ in 0..iters {
            win.lock(LockType::Exclusive, 0).unwrap();
            let mut cur = [0u8; 8];
            win.get(&mut cur, 0, 0).unwrap();
            win.flush(0).unwrap();
            let v = u64::from_le_bytes(cur) + 1;
            win.put(&v.to_le_bytes(), 0, 0).unwrap();
            win.unlock(0).unwrap();
        }
        ctx.barrier();
        let mut b = [0u8; 8];
        win.read_local(0, &mut b);
        u64::from_le_bytes(b)
    });
    assert_eq!(got[0], (p * iters) as u64);
}

#[test]
fn lock_all_excludes_exclusive() {
    // Shared lock_all holders and exclusive lockers must serialise: the
    // exclusive section writes a marker pattern that lock_all readers see
    // either fully or not at all.
    let p = 6;
    let got = Universe::new(p).node_size(3).model(free()).run(|ctx| {
        let win = Win::allocate(ctx, 32, 1).unwrap();
        let mut torn = false;
        for i in 0..20u64 {
            if ctx.rank() % 2 == 0 {
                win.lock(LockType::Exclusive, 0).unwrap();
                win.put(&i.to_le_bytes(), 0, 0).unwrap();
                win.flush(0).unwrap();
                win.put(&i.to_le_bytes(), 0, 8).unwrap();
                win.unlock(0).unwrap();
            } else {
                win.lock_all().unwrap();
                let mut a = [0u8; 8];
                let mut b = [0u8; 8];
                win.get(&mut a, 0, 0).unwrap();
                win.flush(0).unwrap();
                win.get(&mut b, 0, 8).unwrap();
                win.flush_all().unwrap();
                win.unlock_all().unwrap();
                // Under proper exclusion both cells always agree.
                if a != b {
                    torn = true;
                }
            }
        }
        ctx.barrier();
        torn
    });
    assert!(got.iter().all(|&t| !t), "lock_all observed a torn exclusive write");
}

#[test]
fn datatyped_transpose_roundtrip() {
    // Put a row-strided matrix view into a remote contiguous buffer and get
    // it back through the inverse types.
    let got = Universe::new(2).node_size(1).model(free()).run(|ctx| {
        let n = 8usize;
        let win = Win::allocate(ctx, n * n, 1).unwrap();
        win.fence().unwrap();
        let mut ok = true;
        if ctx.rank() == 0 {
            // 8x8 byte matrix; send column 3 (stride 8).
            let mat: Vec<u8> = (0..(n * n) as u8).collect();
            let col = DataType::vector(n, 1, n, DataType::byte());
            let dense = DataType::contiguous(n, DataType::byte());
            win.put_typed(&mat[3..], 1, &col, 1, 0, 1, &dense).unwrap();
            win.fence().unwrap();
            let mut back = vec![0u8; n];
            win.get_typed(&mut back, 1, &dense, 1, 0, 1, &dense).unwrap();
            win.fence().unwrap();
            for (i, &v) in back.iter().enumerate() {
                ok &= v == (i * n + 3) as u8;
            }
        } else {
            win.fence().unwrap();
            win.fence().unwrap();
        }
        ctx.barrier();
        ok
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn msg_and_rma_interoperate() {
    // A window epoch and message passing interleaved on the same ranks —
    // the paper's "step-wise transformation" of MPI applications.
    let p = 4;
    let engine = MsgEngine::new(p);
    let got = Universe::new(p).node_size(2).model(free()).run(move |ctx| {
        let comm = Comm::attach(ctx, &engine);
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.lock_all().unwrap();
        // RMA phase: everyone increments rank 0's counter.
        let mut old = [0u8; 8];
        win.fetch_and_op(&1u64.to_le_bytes(), &mut old, NumKind::U64, MpiOp::Sum, 0, 0).unwrap();
        win.flush(0).unwrap();
        win.unlock_all().unwrap();
        ctx.barrier();
        // Message phase: rank 0 broadcasts the final value via sends.
        let mut val = [0u8; 8];
        if ctx.rank() == 0 {
            win.read_local(0, &mut val);
            for r in 1..p as u32 {
                comm.send(&val, r, 5).unwrap();
            }
        } else {
            comm.recv(&mut val, 0, 5).unwrap();
        }
        u64::from_le_bytes(val)
    });
    assert!(got.iter().all(|&v| v == p as u64));
}

#[test]
fn dynamic_window_many_regions_and_cache_invalidation() {
    let got = Universe::new(3).node_size(1).model(free()).run(|ctx| {
        let win = Win::create_dynamic(ctx).unwrap();
        // Every rank attaches 4 regions and publishes addresses.
        let addrs: Vec<u64> = (0..4).map(|_| win.attach(128).unwrap()).collect();
        let mine: Vec<u8> = addrs.iter().flat_map(|a| a.to_le_bytes()).collect();
        let all = ctx.allgather(&mine);
        // Write into every region of the right neighbour.
        let next = (ctx.rank() + 1) % 3;
        win.lock_all().unwrap();
        for (i, chunk) in all[next as usize].chunks_exact(8).enumerate() {
            let addr = u64::from_le_bytes(chunk.try_into().unwrap());
            win.put(&[i as u8 + 1; 16], next, addr as usize).unwrap();
        }
        win.flush_all().unwrap();
        win.unlock_all().unwrap();
        ctx.barrier();
        // Detach region 2, bump the table; neighbour must see the change.
        win.detach(addrs[2]).unwrap();
        ctx.barrier();
        let prev_addrs = &all[next as usize];
        let gone = u64::from_le_bytes(prev_addrs[16..24].try_into().unwrap());
        win.lock(LockType::Shared, next).unwrap();
        let err = win.put(&[9u8; 4], next, gone as usize).is_err();
        win.unlock(next).unwrap();
        // Check our own regions got the data.
        let mut vals = Vec::new();
        for (i, &a) in addrs.iter().enumerate() {
            if i == 2 {
                continue; // detached
            }
            let mut b = [0u8; 16];
            win.region_read(a, 0, &mut b).unwrap();
            vals.push((i, b[0]));
        }
        (err, vals)
    });
    for (r, (err, vals)) in got.iter().enumerate() {
        assert!(err, "rank {r}: put to detached region must fail");
        for &(i, v) in vals {
            assert_eq!(v, i as u8 + 1, "rank {r} region {i}");
        }
    }
}

#[test]
fn window_kinds_coexist() {
    let got = Universe::new(4).node_size(4).model(free()).run(|ctx| {
        let a = Win::allocate(ctx, 64, 1).unwrap();
        let c = Win::create(ctx, 64, 1).unwrap();
        let d = Win::create_dynamic(ctx).unwrap();
        let s = Win::allocate_shared(ctx, 64, 1).unwrap();
        // Distinct windows carry independent epochs.
        a.fence().unwrap();
        c.lock_all().unwrap();
        let next = (ctx.rank() + 1) % 4;
        a.put(&[1u8; 4], next, 0).unwrap();
        c.put(&[2u8; 4], next, 0).unwrap();
        c.flush_all().unwrap();
        a.fence().unwrap();
        c.unlock_all().unwrap();
        ctx.barrier();
        let mut x = [0u8; 4];
        let mut y = [0u8; 4];
        a.read_local(0, &mut x);
        c.read_local(0, &mut y);
        let _ = (d.kind(), s.kind());
        (x[0], y[0])
    });
    assert!(got.iter().all(|&(x, y)| x == 1 && y == 2));
}

#[test]
fn pscw_message_complexity_independent_of_p() {
    // The paper's O(k) claim: one PSCW cycle with k = 2 neighbours issues
    // the same number of fabric operations regardless of job size.
    let total = |p: usize| {
        let (_res, fabric) = Universe::new(p).node_size(1).model(free()).launch(move |ctx| {
            let win = Win::allocate(ctx, 8, 1).unwrap();
            let me = ctx.rank();
            let pn = p as u32;
            let g = Group::new([(me + pn - 1) % pn, (me + 1) % pn]);
            ctx.barrier();
            win.post(&g).unwrap();
            win.start(&g).unwrap();
            win.complete().unwrap();
            win.wait().unwrap();
        });
        fabric.counters().snapshot().total_ops() as f64
    };
    let per_rank_4 = total(4) / 4.0;
    let per_rank_16 = total(16) / 16.0;
    // Per-rank operation counts must be essentially constant (allow small
    // jitter from CAS retries under contention).
    assert!(
        per_rank_16 < per_rank_4 * 1.5,
        "PSCW ops grew with p: {per_rank_4}/rank @4 vs {per_rank_16}/rank @16"
    );
}

#[test]
fn pscw_start_wait_issue_zero_remote_ops() {
    // §2.3: post/complete are O(k) messages; start/wait must be purely
    // local. With a single poster that is pre-synchronised, measure the
    // fabric ops start() itself performs remotely.
    let (res, _fabric) = Universe::new(2).node_size(1).model(free()).launch(|ctx| {
        let win = Win::allocate(ctx, 8, 1).unwrap();
        if ctx.rank() == 1 {
            win.post(&Group::new([0])).unwrap();
        }
        ctx.barrier(); // ensure the post landed
        let mut remote_ops = 0;
        if ctx.rank() == 0 {
            let before = ctx.fabric().counters().snapshot();
            win.start(&Group::new([1])).unwrap();
            let after = ctx.fabric().counters().snapshot();
            // All ops during start() target rank 0's own meta segment
            // (local list scan); none may be puts/gets/amos to rank 1.
            // Counters are global; with rank 1 idle after the barrier, any
            // delta is ours. Local list scans do count reads — but they are
            // local (rank 0 → rank 0).
            remote_ops = after.since(&before).total_ops();
            win.complete().unwrap();
        } else {
            win.wait().unwrap();
        }
        ctx.barrier();
        remote_ops
    });
    // start() scans the local list: a handful of local reads/AMOs, bounded
    // and independent of p. (Zero *network* messages — all ops hit the
    // local meta segment.)
    assert!(res[0] < 20, "start() issued {} ops", res[0]);
}

#[test]
fn batched_window_epochs_deliver_and_accelerate() {
    // The issue-side batching layer under full window protocols: same
    // bytes delivered through fence, PSCW and lock epochs, with the lock
    // epoch's burst measurably cheaper than the unbatched run.
    let p = 4;
    let run = |batch: bool| {
        Universe::new(p).node_size(1).batch(batch).run(move |ctx| {
            let win = Win::allocate(ctx, 1 << 12, 1).unwrap();
            let me = ctx.rank();
            let pn = p as u32;
            let right = (me + 1) % pn;
            // Fence epoch: a contiguous 16-op burst to the right neighbour.
            win.fence().unwrap();
            for i in 0..16 {
                win.put(&[me as u8 + 1; 8], right, i * 8).unwrap();
            }
            win.fence_assert(fompi::ASSERT_NOSUCCEED).unwrap();
            // PSCW epoch over the same ring.
            let g = Group::new([(me + pn - 1) % pn, right]);
            win.post(&g).unwrap();
            win.start(&g).unwrap();
            for i in 0..8 {
                win.put(&[me as u8 + 101; 8], right, 128 + i * 8).unwrap();
            }
            win.complete().unwrap();
            win.wait().unwrap();
            // Timed lock epoch: the burst the ablation measures.
            win.lock(LockType::Exclusive, right).unwrap();
            let t0 = ctx.now();
            for i in 0..16 {
                win.put(&[me as u8 + 201; 8], right, 256 + i * 8).unwrap();
            }
            win.flush(right).unwrap();
            let dt = ctx.now() - t0;
            win.unlock(right).unwrap();
            ctx.barrier();
            let mut a = [0u8; 8];
            let mut b = [0u8; 8];
            let mut c = [0u8; 8];
            win.read_local(120, &mut a);
            win.read_local(184, &mut b);
            win.read_local(376, &mut c);
            (a, b, c, dt)
        })
    };
    let batched = run(true);
    let unbatched = run(false);
    for (r, &(a, b, c, _)) in batched.iter().enumerate() {
        let left = ((r + p - 1) % p) as u8;
        assert_eq!(a, [left + 1; 8], "fence epoch, rank {r}");
        assert_eq!(b, [left + 101; 8], "pscw epoch, rank {r}");
        assert_eq!(c, [left + 201; 8], "lock epoch, rank {r}");
    }
    // Identical delivery either way.
    for (bt, un) in batched.iter().zip(&unbatched) {
        assert_eq!((bt.0, bt.1, bt.2), (un.0, un.1, un.2));
    }
    // And the batched burst closes its epoch faster than per-op injection.
    assert!(
        batched[0].3 < unbatched[0].3,
        "batched {} ns vs unbatched {} ns",
        batched[0].3,
        unbatched[0].3
    );
}
