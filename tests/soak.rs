//! Protocol soak campaign: every synchronisation protocol, many seeds,
//! deterministic fault plans — zero invariant violations allowed.
//!
//! The whole campaign derives from one root seed (`FOMPI_SEED`, default
//! below), and every violation message names the seed that reproduces it,
//! so a red run here is replayable with a single environment variable.

use fompi::soak::{run_case, seeds, Protocol};
use fompi_fabric::rng::root_seed_from_env;
use fompi_fabric::FaultPlan;

const ROOT: u64 = 0x50A4_B17E_5EED;

fn root() -> u64 {
    root_seed_from_env(ROOT)
}

/// The acceptance campaign: 32 seeds x all 8 protocols at p = 4 under
/// alternating light/heavy fault plans, zero violations.
#[test]
fn thirty_two_seeds_zero_violations() {
    let campaign = seeds(root(), 32);
    for proto in Protocol::ALL {
        for (i, &seed) in campaign.iter().enumerate() {
            let plan = if i % 2 == 0 { FaultPlan::light(0) } else { FaultPlan::heavy(0) };
            let out = run_case(proto, 4, 4, seed, plan);
            assert!(
                out.passed(),
                "{} seed {seed:#x} (campaign root {:#x}): {:?}",
                proto.name(),
                root(),
                out.violations
            );
        }
    }
}

/// Faults must actually fire during the campaign — a soak that injects
/// nothing proves nothing.
#[test]
fn heavy_plans_inject_faults_in_every_protocol() {
    for proto in Protocol::ALL {
        let out = run_case(proto, 4, 4, seeds(root(), 1)[0], FaultPlan::heavy(0));
        assert!(out.passed(), "{}: {:?}", proto.name(), out.violations);
        assert!(out.injected > 0, "{}: heavy plan injected no faults", proto.name());
    }
}

/// Same (protocol, p, seed, plan) twice => bit-identical per-rank virtual
/// clocks and fault counts, for the contention-free workloads. (Lock
/// protocols are excluded: acquisition order is schedule-dependent, so
/// their clocks legitimately vary — correctness there is conservation,
/// checked above.)
#[test]
fn soak_runs_are_bit_deterministic_per_seed() {
    for proto in [
        Protocol::Fence,
        Protocol::Pscw,
        Protocol::PscwFast,
        Protocol::Notify,
        Protocol::Flush,
        // Disjoint pairings mean no contention: issue counts, fault
        // draws and clocks are as deterministic as the ring workloads'.
        // (This relies on single-element get_accumulate taking the
        // hardware-AMO path — the locked fallback serialises disjoint
        // cells through the target's one ACC_LOCK word, whose retry
        // backoff charges schedule-dependent virtual time.)
        Protocol::TxnTransfer,
    ] {
        for &seed in &seeds(root().wrapping_add(1), 4) {
            let a = run_case(proto, 5, 4, seed, FaultPlan::heavy(0));
            let b = run_case(proto, 5, 4, seed, FaultPlan::heavy(0));
            assert!(
                a.passed() && b.passed(),
                "{}: {:?} {:?}",
                proto.name(),
                a.violations,
                b.violations
            );
            assert_eq!(
                a.clocks,
                b.clocks,
                "{} seed {seed:#x}: virtual clocks diverged between identical runs",
                proto.name()
            );
            assert_eq!(
                a.injected,
                b.injected,
                "{} seed {seed:#x}: fault counts diverged",
                proto.name()
            );
        }
    }
}

/// Different seeds must explore different schedules: across the campaign
/// the final clocks should not all collapse to one value.
#[test]
fn distinct_seeds_explore_distinct_schedules() {
    let mut clocks = Vec::new();
    for &seed in &seeds(root().wrapping_add(2), 6) {
        clocks.push(run_case(Protocol::Fence, 4, 4, seed, FaultPlan::heavy(0)).clocks);
    }
    clocks.sort_unstable();
    clocks.dedup();
    assert!(clocks.len() > 1, "every seed produced the identical schedule");
}

/// A larger ring with a mid-size plan: the invariants hold as p grows.
#[test]
fn wider_ring_smoke() {
    for proto in Protocol::ALL {
        let out = run_case(proto, 8, 3, seeds(root().wrapping_add(3), 1)[0], FaultPlan::light(0));
        assert!(out.passed(), "{}: {:?}", proto.name(), out.violations);
    }
}
