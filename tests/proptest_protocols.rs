//! Randomized tests for the synchronisation protocols (seeded in-repo
//! PRNG) under randomized topologies and schedules.

use fompi::{LockType, Win};
use fompi_fabric::rng::{root_seed_from_env, splitmix64, Rng};
use fompi_fabric::CostModel;
use fompi_runtime::{Group, Universe};

/// Default campaign root; override with `FOMPI_SEED` to replay a failure
/// (every assert below prints the root that reproduces it).
const ROOT: u64 = 0x9201_7E57_C0DE;

fn root() -> u64 {
    root_seed_from_env(ROOT)
}

/// Per-test, per-case seed derived from the one root: `stream` keeps the
/// four tests' draws independent.
fn case_seed(stream: u64, case: u64) -> u64 {
    splitmix64(root() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (case << 40))
}

fn hash2(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b;
    x ^= x >> 31;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 29)
}

/// PSCW with a random communication digraph: every edge (i → j) means
/// i accesses j. Posts precede starts in program order, so any graph is
/// deadlock-free; every access must deliver exactly its payload.
#[test]
fn pscw_random_digraph_matches() {
    for case in 0..12u64 {
        let mut rng = Rng::seed_from_u64(case_seed(1, case));
        let p = rng.range(3, 7);
        let seed = rng.next_u64();
        let density = 0.2 + 0.7 * rng.next_f64();
        let got = Universe::new(p).node_size(2).model(CostModel::free()).run(move |ctx| {
            let me = ctx.rank();
            let edge = |i: u32, j: u32| {
                i != j && (hash2(seed ^ i as u64, j as u64) % 1000) as f64 / 1000.0 < density
            };
            let access: Vec<u32> = (0..p as u32).filter(|&j| edge(me, j)).collect();
            let exposure: Vec<u32> = (0..p as u32).filter(|&i| edge(i, me)).collect();
            let win = Win::allocate(ctx, 8 * p, 1).unwrap();
            win.post(&Group::new(exposure.clone())).unwrap();
            win.start(&Group::new(access.clone())).unwrap();
            for &j in &access {
                win.put(&(me as u64 + 1).to_le_bytes(), j, me as usize * 8).unwrap();
            }
            win.complete().unwrap();
            win.wait().unwrap();
            ctx.barrier();
            let mut got = vec![0u64; p];
            for (i, g) in got.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                win.read_local(i * 8, &mut b);
                *g = u64::from_le_bytes(b);
            }
            (exposure, got)
        });
        for (me, (exposure, vals)) in got.iter().enumerate() {
            for i in 0..p as u32 {
                let expect = if exposure.contains(&i) { i as u64 + 1 } else { 0 };
                assert_eq!(
                    vals[i as usize],
                    expect,
                    "case {case} rank {me} slot {i} (exposure {exposure:?}, replay: FOMPI_SEED={:#x})",
                    root()
                );
            }
        }
    }
}

/// Exclusive locks with random target/iteration mixes never lose counter
/// updates, whatever the interleaving.
#[test]
fn exclusive_lock_linearizable() {
    for case in 0..12u64 {
        let mut rng = Rng::seed_from_u64(case_seed(2, case));
        let p = rng.range(2, 6);
        let iters = rng.range(1, 12);
        let seed = rng.next_u64();
        let got = Universe::new(p).node_size(2).model(CostModel::free()).run(move |ctx| {
            let win = Win::allocate(ctx, 8 * p, 1).unwrap();
            let me = ctx.rank() as u64;
            let mut incs = vec![0u64; p];
            for i in 0..iters {
                let target = (hash2(seed ^ me, i as u64) % p as u64) as u32;
                win.lock(LockType::Exclusive, target).unwrap();
                let mut cur = [0u8; 8];
                win.get(&mut cur, target, 0).unwrap();
                win.flush(target).unwrap();
                let v = u64::from_le_bytes(cur) + 1;
                win.put(&v.to_le_bytes(), target, 0).unwrap();
                win.unlock(target).unwrap();
                incs[target as usize] += 1;
            }
            ctx.barrier();
            let mut b = [0u8; 8];
            win.read_local(0, &mut b);
            (incs, u64::from_le_bytes(b))
        });
        // Sum increments per target across ranks; each target's counter
        // must equal the total aimed at it.
        for t in 0..p {
            let expect: u64 = got.iter().map(|(incs, _)| incs[t]).sum();
            assert_eq!(
                got[t].1,
                expect,
                "case {case} target {t} (replay: FOMPI_SEED={:#x})",
                root()
            );
        }
    }
}

/// Mixed shared/exclusive epochs: exclusive writers keep a two-cell
/// invariant that shared readers can never see broken.
#[test]
fn reader_writer_invariant() {
    for case in 0..12u64 {
        let mut rng = Rng::seed_from_u64(case_seed(3, case));
        let p = rng.range(2, 6);
        let seed = rng.next_u64();
        let got = Universe::new(p).node_size(2).model(CostModel::free()).run(move |ctx| {
            let win = Win::allocate(ctx, 32, 1).unwrap();
            let me = ctx.rank() as u64;
            let mut torn = false;
            for i in 0..10u64 {
                if hash2(seed ^ me, i).is_multiple_of(2) {
                    win.lock(LockType::Exclusive, 0).unwrap();
                    let stamp = me * 1000 + i;
                    win.put(&stamp.to_le_bytes(), 0, 0).unwrap();
                    win.flush(0).unwrap();
                    win.put(&stamp.to_le_bytes(), 0, 8).unwrap();
                    win.unlock(0).unwrap();
                } else {
                    win.lock(LockType::Shared, 0).unwrap();
                    let mut a = [0u8; 8];
                    let mut b = [0u8; 8];
                    win.get(&mut a, 0, 0).unwrap();
                    win.flush(0).unwrap();
                    win.get(&mut b, 0, 8).unwrap();
                    win.flush(0).unwrap();
                    win.unlock(0).unwrap();
                    torn |= a != b;
                }
            }
            ctx.barrier();
            torn
        });
        assert!(
            got.iter().all(|&t| !t),
            "case {case}: a reader saw a torn exclusive write (replay: FOMPI_SEED={:#x})",
            root()
        );
    }
}

/// put_signal counters are exact for random message mixes.
#[test]
fn notify_counts_exact() {
    for case in 0..12u64 {
        let mut rng = Rng::seed_from_u64(case_seed(4, case));
        let p = rng.range(2, 6);
        let msgs = rng.range(1, 10);
        let seed = rng.next_u64();
        let got = Universe::new(p).node_size(2).model(CostModel::free()).run(move |ctx| {
            let win = Win::allocate(ctx, 8 * p * msgs + 8, 1).unwrap();
            let me = ctx.rank() as u64;
            win.lock_all().unwrap();
            let mut sent = vec![0u64; p];
            for i in 0..msgs {
                let t = (hash2(seed ^ me, i as u64) % p as u64) as u32;
                if t == ctx.rank() {
                    continue;
                }
                win.put_signal(&me.to_le_bytes(), t, (i * p + t as usize) * 8, 0).unwrap();
                sent[t as usize] += 1;
            }
            win.unlock_all().unwrap();
            // Total notifications I should receive:
            let sent_bytes: Vec<u8> = sent.iter().flat_map(|v| v.to_le_bytes()).collect();
            let all = ctx.allgather(&sent_bytes);
            let expect: u64 = all
                .iter()
                .map(|row| {
                    u64::from_le_bytes(
                        row[ctx.rank() as usize * 8..ctx.rank() as usize * 8 + 8]
                            .try_into()
                            .unwrap(),
                    )
                })
                .sum();
            win.signal_wait(0, expect).unwrap();
            let n = win.signal_test(0).unwrap();
            ctx.barrier();
            (n, expect)
        });
        for (n, expect) in got {
            assert_eq!(n, expect, "case {case} (replay: FOMPI_SEED={:#x})", root());
        }
    }
}
