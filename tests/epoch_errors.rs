//! Epoch state-machine misuse matrix: every illegal transition must return
//! a typed error (MPI would abort; we assert the detection) and leave the
//! window usable.

use fompi::{FompiError, LockType, Win};
use fompi_fabric::CostModel;
use fompi_runtime::{Group, Universe};

fn two_ranks<T: Send>(f: impl Fn(&fompi_runtime::RankCtx, &Win) -> T + Send + Sync) -> Vec<T> {
    Universe::new(2).node_size(1).model(CostModel::free()).run(move |ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        let out = f(ctx, &win);
        ctx.barrier();
        out
    })
}

#[test]
fn put_without_epoch_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        matches!(win.put(&[1u8; 4], other, 0), Err(FompiError::NoAccessEpoch { .. }))
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn pscw_put_outside_group_is_rejected() {
    let got = Universe::new(3).node_size(1).model(CostModel::free()).run(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        let mut bad = true;
        match ctx.rank() {
            0 => {
                win.start(&Group::new([1])).unwrap();
                // Rank 2 is not in the access group.
                bad = matches!(
                    win.put(&[1u8; 4], 2, 0),
                    Err(FompiError::NoAccessEpoch { target: 2 })
                );
                win.put(&[1u8; 4], 1, 0).unwrap(); // in-group is fine
                win.complete().unwrap();
            }
            1 => {
                win.post(&Group::new([0])).unwrap();
                win.wait().unwrap();
            }
            _ => {}
        }
        ctx.barrier();
        bad
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn complete_without_start_and_wait_without_post() {
    let got = two_ranks(|_ctx, win| {
        let a = matches!(win.complete(), Err(FompiError::InvalidEpoch(_)));
        let b = matches!(win.wait(), Err(FompiError::InvalidEpoch(_)));
        let c = matches!(win.test(), Err(FompiError::InvalidEpoch(_)));
        a && b && c
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn unlock_without_lock_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        matches!(win.unlock(other), Err(FompiError::InvalidEpoch(_)))
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn double_lock_same_target_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        win.lock(LockType::Shared, other).unwrap();
        let bad = matches!(win.lock(LockType::Shared, other), Err(FompiError::InvalidEpoch(_)));
        win.unlock(other).unwrap();
        bad
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn fence_during_lock_epoch_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        win.lock(LockType::Shared, other).unwrap();
        let bad = matches!(win.fence(), Err(FompiError::InvalidEpoch(_)));
        win.unlock(other).unwrap();
        bad
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn lock_all_during_lock_epoch_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        win.lock(LockType::Shared, other).unwrap();
        let bad = matches!(win.lock_all(), Err(FompiError::InvalidEpoch(_)));
        win.unlock(other).unwrap();
        bad
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn flush_outside_passive_epoch_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        let a = matches!(win.flush(other), Err(FompiError::InvalidEpoch(_)));
        let b = matches!(win.flush_all(), Err(FompiError::InvalidEpoch(_)));
        a && b
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn flush_wrong_target_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        win.lock(LockType::Shared, other).unwrap();
        // Own rank is not locked.
        let bad = matches!(win.flush(ctx.rank()), Err(FompiError::InvalidEpoch(_)));
        win.unlock(other).unwrap();
        bad
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn out_of_bounds_put_is_rejected_and_window_survives() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        win.lock(LockType::Shared, other).unwrap();
        let bad = matches!(win.put(&[0u8; 128], other, 0), Err(FompiError::OutOfBounds { .. }));
        // The window remains usable after the error.
        win.put(&[7u8; 8], other, 0).unwrap();
        win.flush(other).unwrap();
        win.unlock(other).unwrap();
        ctx.barrier();
        let mut b = [0u8; 8];
        win.read_local(0, &mut b);
        bad && b[0] == 7
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn attach_on_static_window_is_rejected() {
    let got = two_ranks(|_ctx, win| {
        let a = win.attach(64).is_err();
        let b = win.detach(0x1000_0000).is_err();
        a && b
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn shared_query_on_non_shared_window_is_rejected() {
    let got = two_ranks(|_ctx, win| win.shared_query(0).is_err());
    assert!(got.iter().all(|&b| b));
}

#[test]
fn double_post_without_wait_is_rejected() {
    let got = Universe::new(2).node_size(1).model(CostModel::free()).run(|ctx| {
        let win = Win::allocate(ctx, 8, 1).unwrap();
        let mut bad = true;
        if ctx.rank() == 1 {
            win.post(&Group::new([0])).unwrap();
            bad = matches!(win.post(&Group::new([0])), Err(FompiError::InvalidEpoch(_)));
            // Clean up the matching so rank 0 can finish.
        }
        if ctx.rank() == 0 {
            win.start(&Group::new([1])).unwrap();
            win.complete().unwrap();
        } else {
            win.wait().unwrap();
        }
        ctx.barrier();
        bad
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn mcs_unlock_without_lock_is_rejected() {
    let got = two_ranks(|_ctx, win| matches!(win.mcs_unlock(), Err(FompiError::InvalidEpoch(_))));
    assert!(got.iter().all(|&b| b));
}

#[test]
fn bad_accumulate_inputs_rejected() {
    use fompi::{MpiOp, NumKind};
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        win.lock(LockType::Shared, other).unwrap();
        // 5 bytes is not a whole number of u64 elements.
        let a = matches!(
            win.accumulate(&[0u8; 5], NumKind::U64, MpiOp::Sum, other, 0),
            Err(FompiError::BadAccumulate(_))
        );
        // fetch_and_op with a result buffer of the wrong size.
        let mut small = [0u8; 4];
        let b = matches!(
            win.fetch_and_op(&1u64.to_le_bytes(), &mut small, NumKind::U64, MpiOp::Sum, other, 0),
            Err(FompiError::BadAccumulate(_))
        );
        // CAS on an unaligned displacement.
        let c = matches!(win.compare_and_swap(1, 0, other, 3), Err(FompiError::BadAccumulate(_)));
        win.unlock(other).unwrap();
        a && b && c
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn window_free_deregisters_segments() {
    Universe::new(2).node_size(1).model(CostModel::free()).run(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.fence().unwrap();
        win.put(&[1u8; 8], (ctx.rank() + 1) % 2, 0).unwrap();
        win.fence().unwrap();
        win.free(ctx);
        // A second window after freeing the first works fine.
        let win2 = Win::allocate(ctx, 64, 1).unwrap();
        win2.fence().unwrap();
        win2.fence().unwrap();
    });
}
