//! Epoch state-machine misuse matrix: every illegal transition must return
//! a typed error (MPI would abort; we assert the detection) and leave the
//! window usable.

use fompi::{FompiError, LockType, Win};
use fompi_fabric::{CostModel, FaultKind, FaultPlan};
use fompi_runtime::{Group, Universe};

fn two_ranks<T: Send>(f: impl Fn(&fompi_runtime::RankCtx, &Win) -> T + Send + Sync) -> Vec<T> {
    Universe::new(2).node_size(1).model(CostModel::free()).run(move |ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        let out = f(ctx, &win);
        ctx.barrier();
        out
    })
}

#[test]
fn put_without_epoch_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        matches!(win.put(&[1u8; 4], other, 0), Err(FompiError::NoAccessEpoch { .. }))
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn pscw_put_outside_group_is_rejected() {
    let got = Universe::new(3).node_size(1).model(CostModel::free()).run(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        let mut bad = true;
        match ctx.rank() {
            0 => {
                win.start(&Group::new([1])).unwrap();
                // Rank 2 is not in the access group.
                bad = matches!(
                    win.put(&[1u8; 4], 2, 0),
                    Err(FompiError::NoAccessEpoch { target: 2 })
                );
                win.put(&[1u8; 4], 1, 0).unwrap(); // in-group is fine
                win.complete().unwrap();
            }
            1 => {
                win.post(&Group::new([0])).unwrap();
                win.wait().unwrap();
            }
            _ => {}
        }
        ctx.barrier();
        bad
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn complete_without_start_and_wait_without_post() {
    let got = two_ranks(|_ctx, win| {
        let a = matches!(win.complete(), Err(FompiError::InvalidEpoch(_)));
        let b = matches!(win.wait(), Err(FompiError::InvalidEpoch(_)));
        let c = matches!(win.test(), Err(FompiError::InvalidEpoch(_)));
        a && b && c
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn unlock_without_lock_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        matches!(win.unlock(other), Err(FompiError::InvalidEpoch(_)))
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn double_lock_same_target_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        win.lock(LockType::Shared, other).unwrap();
        let bad = matches!(win.lock(LockType::Shared, other), Err(FompiError::InvalidEpoch(_)));
        win.unlock(other).unwrap();
        bad
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn fence_during_lock_epoch_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        win.lock(LockType::Shared, other).unwrap();
        let bad = matches!(win.fence(), Err(FompiError::InvalidEpoch(_)));
        win.unlock(other).unwrap();
        bad
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn lock_all_during_lock_epoch_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        win.lock(LockType::Shared, other).unwrap();
        let bad = matches!(win.lock_all(), Err(FompiError::InvalidEpoch(_)));
        win.unlock(other).unwrap();
        bad
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn flush_outside_passive_epoch_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        let a = matches!(win.flush(other), Err(FompiError::InvalidEpoch(_)));
        let b = matches!(win.flush_all(), Err(FompiError::InvalidEpoch(_)));
        a && b
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn flush_wrong_target_is_rejected() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        win.lock(LockType::Shared, other).unwrap();
        // Own rank is not locked.
        let bad = matches!(win.flush(ctx.rank()), Err(FompiError::InvalidEpoch(_)));
        win.unlock(other).unwrap();
        bad
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn out_of_bounds_put_is_rejected_and_window_survives() {
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        win.lock(LockType::Shared, other).unwrap();
        let bad = matches!(win.put(&[0u8; 128], other, 0), Err(FompiError::OutOfBounds { .. }));
        // The window remains usable after the error.
        win.put(&[7u8; 8], other, 0).unwrap();
        win.flush(other).unwrap();
        win.unlock(other).unwrap();
        ctx.barrier();
        let mut b = [0u8; 8];
        win.read_local(0, &mut b);
        bad && b[0] == 7
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn attach_on_static_window_is_rejected() {
    let got = two_ranks(|_ctx, win| {
        let a = win.attach(64).is_err();
        let b = win.detach(0x1000_0000).is_err();
        a && b
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn shared_query_on_non_shared_window_is_rejected() {
    let got = two_ranks(|_ctx, win| win.shared_query(0).is_err());
    assert!(got.iter().all(|&b| b));
}

#[test]
fn double_post_without_wait_is_rejected() {
    let got = Universe::new(2).node_size(1).model(CostModel::free()).run(|ctx| {
        let win = Win::allocate(ctx, 8, 1).unwrap();
        let mut bad = true;
        if ctx.rank() == 1 {
            win.post(&Group::new([0])).unwrap();
            bad = matches!(win.post(&Group::new([0])), Err(FompiError::InvalidEpoch(_)));
            // Clean up the matching so rank 0 can finish.
        }
        if ctx.rank() == 0 {
            win.start(&Group::new([1])).unwrap();
            win.complete().unwrap();
        } else {
            win.wait().unwrap();
        }
        ctx.barrier();
        bad
    });
    assert!(got.iter().all(|&b| b));
}

#[test]
fn mcs_unlock_without_lock_is_rejected() {
    let got = two_ranks(|_ctx, win| matches!(win.mcs_unlock(), Err(FompiError::InvalidEpoch(_))));
    assert!(got.iter().all(|&b| b));
}

#[test]
fn bad_accumulate_inputs_rejected() {
    use fompi::{MpiOp, NumKind};
    let got = two_ranks(|ctx, win| {
        let other = (ctx.rank() + 1) % 2;
        win.lock(LockType::Shared, other).unwrap();
        // 5 bytes is not a whole number of u64 elements.
        let a = matches!(
            win.accumulate(&[0u8; 5], NumKind::U64, MpiOp::Sum, other, 0),
            Err(FompiError::BadAccumulate(_))
        );
        // fetch_and_op with a result buffer of the wrong size.
        let mut small = [0u8; 4];
        let b = matches!(
            win.fetch_and_op(&1u64.to_le_bytes(), &mut small, NumKind::U64, MpiOp::Sum, other, 0),
            Err(FompiError::BadAccumulate(_))
        );
        // CAS on an unaligned displacement.
        let c = matches!(win.compare_and_swap(1, 0, other, 3), Err(FompiError::BadAccumulate(_)));
        win.unlock(other).unwrap();
        a && b && c
    });
    assert!(got.iter().all(|&b| b));
}

/// Unlock with a delayed completion outstanding: the unlock path must
/// fold the injected completion delay into its flush *before* the release
/// AMO, so the next holder of the exclusive lock always observes the
/// previous holder's writes. A plan that delays every eligible completion
/// makes the ordering bug (release before drain) immediately visible as a
/// lost update.
#[test]
fn unlock_with_delayed_completion_still_publishes() {
    let plan = FaultPlan { delay_prob: 1.0, delay_ns: 50_000.0, ..FaultPlan::disabled() }
        .with_seed(0x0DE1_A7ED);
    let iters = 8u64;
    let (got, fabric) =
        Universe::new(2).node_size(1).model(CostModel::free()).faults(plan).launch(move |ctx| {
            let win = Win::allocate(ctx, 16, 1).unwrap();
            for _ in 0..iters {
                win.lock(LockType::Exclusive, 0).unwrap();
                let mut cur = [0u8; 8];
                win.get(&mut cur, 0, 0).unwrap();
                win.flush(0).unwrap();
                let v = u64::from_le_bytes(cur) + 1;
                win.put(&v.to_le_bytes(), 0, 0).unwrap();
                // No explicit flush: the put's completion is what the
                // delay targets, and unlock alone must drain it.
                win.unlock(0).unwrap();
            }
            ctx.barrier();
            let mut b = [0u8; 8];
            win.read_local(0, &mut b);
            u64::from_le_bytes(b)
        });
    assert_eq!(got[0], 2 * iters, "an update was lost across unlock");
    assert!(
        fabric.faults().injected(FaultKind::Delay) > 0,
        "the plan never fired; the test proved nothing"
    );
}

/// Detach on one rank racing retried attaches on the others: transient
/// `SegmentBusy` injection forces the attach path through its bounded
/// retry loop while neighbours concurrently grow and shrink the region
/// table. Every attach must eventually succeed and every put must land in
/// the right region.
#[test]
fn detach_races_retried_attach_under_busy_faults() {
    let plan =
        FaultPlan { busy_prob: 0.6, busy_ns: 1_000.0, ..FaultPlan::disabled() }.with_seed(0xB5_1D);
    let (got, fabric) =
        Universe::new(3).node_size(1).model(CostModel::free()).faults(plan).launch(|ctx| {
            let win = Win::create_dynamic(ctx).unwrap();
            let next = (ctx.rank() + 1) % 3;
            let mut ok = true;
            for round in 0..6u64 {
                // Attach retries internally on injected SegmentBusy.
                let addr = win.attach(64).unwrap();
                let all = ctx.allgather(&addr.to_le_bytes());
                let peer = u64::from_le_bytes(all[next as usize].as_slice().try_into().unwrap());
                win.lock(LockType::Exclusive, next).unwrap();
                win.put(&round.to_le_bytes(), next, peer as usize).unwrap();
                win.unlock(next).unwrap();
                ctx.barrier();
                let mut b = [0u8; 8];
                win.region_read(addr, 0, &mut b).unwrap();
                ok &= u64::from_le_bytes(b) == round;
                // Detach while the other ranks may still be mid-retry on
                // their next attach.
                win.detach(addr).unwrap();
                ctx.barrier();
            }
            ok
        });
    assert!(got.iter().all(|&b| b), "a put landed in the wrong region");
    assert!(
        fabric.faults().injected(FaultKind::Busy) > 0,
        "no SegmentBusy was injected; the retry loop was never exercised"
    );
}

/// Two traced runs with the same fault-plan seed must produce identical
/// telemetry streams, event for event — fault injection is part of the
/// deterministic schedule, not noise on top of it.
#[test]
fn fault_telemetry_is_bit_deterministic_per_seed() {
    type EventKey = (usize, u32, u32, u64, u64, u64, u64);
    fn traced_run() -> Vec<Vec<EventKey>> {
        let p = 4;
        let (_out, fabric) = Universe::new(p)
            .node_size(2)
            .model(CostModel::free())
            .faults(FaultPlan::heavy(0xFEED_FACE))
            .trace(4096)
            .launch(move |ctx| {
                let win = Win::allocate(ctx, 8 * p, 1).unwrap();
                let me = ctx.rank();
                for e in 0..4u64 {
                    win.fence().unwrap();
                    let v = (me as u64 + 1) * 100 + e;
                    win.put(&v.to_le_bytes(), (me + 1) % p as u32, me as usize * 8).unwrap();
                    win.fence().unwrap();
                }
                ctx.barrier();
            });
        // Per-rank streams: cross-rank interleaving is schedule-dependent,
        // but each origin's own event sequence must be reproducible.
        let mut per_rank = vec![Vec::new(); p];
        for ev in fabric.telemetry().events() {
            per_rank[ev.origin as usize].push((
                ev.kind.index(),
                ev.origin,
                ev.target,
                ev.win,
                ev.bytes,
                ev.t_start.to_bits(),
                ev.t_end.to_bits(),
            ));
        }
        for stream in &mut per_rank {
            stream.sort_unstable();
        }
        per_rank
    }
    let a = traced_run();
    let b = traced_run();
    assert!(a.iter().any(|s| !s.is_empty()), "tracing produced no events; nothing was compared");
    for (rank, (ea, eb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(ea.len(), eb.len(), "rank {rank}: event counts diverged");
        assert_eq!(ea, eb, "rank {rank}: telemetry streams diverged between identical runs");
    }
}

#[test]
fn window_free_deregisters_segments() {
    Universe::new(2).node_size(1).model(CostModel::free()).run(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.fence().unwrap();
        win.put(&[1u8; 8], (ctx.rank() + 1) % 2, 0).unwrap();
        win.fence().unwrap();
        win.free(ctx);
        // A second window after freeing the first works fine.
        let win2 = Win::allocate(ctx, 64, 1).unwrap();
        win2.fence().unwrap();
        win2.fence().unwrap();
    });
}
