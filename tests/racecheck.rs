//! Acceptance tests for the RMA race checker (`fompi_fabric::shadow`).
//!
//! One deliberately-racy program per violation class, each asserting that
//! report mode names it; a panic-mode abort check; and the false-positive
//! gate: every soak protocol, several seeds, fully clean under
//! `FOMPI_RACECHECK=panic`.
//!
//! Detection is per-interleaving (like a thread sanitizer): the checker is
//! sound for the schedule it observed, so racy programs assert `>= 1`
//! flags, never exact counts.

use fompi::soak::{run_case_racecheck, seeds, Protocol};
use fompi::{LockType, MpiOp, NumKind, Win};
use fompi_fabric::{CostModel, FaultPlan, RaceClass, RacecheckMode};
use fompi_runtime::Universe;

fn racy_universe(p: usize) -> Universe {
    Universe::new(p).node_size(1).model(CostModel::free()).racecheck(RacecheckMode::Report)
}

// ------------------------------------------------ one racy program per class

#[test]
fn put_put_overlap_within_fence_epoch_is_flagged() {
    let (_out, fabric) = racy_universe(2).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.fence().unwrap();
        // Both ranks put the same 8 bytes of rank 0's window in one epoch.
        win.put(&[ctx.rank() as u8 + 1; 8], 0, 0).unwrap();
        win.fence().unwrap();
        win.free(ctx);
    });
    assert!(fabric.shadow().flagged(RaceClass::PutPut) >= 1, "{}", fabric.shadow().report());
}

#[test]
fn put_get_overlap_within_fence_epoch_is_flagged() {
    let (_out, fabric) = racy_universe(2).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.fence().unwrap();
        if ctx.rank() == 0 {
            win.put(&[7u8; 8], 1, 0).unwrap();
        } else {
            // Reading the put's target before any separating fence/flush.
            let mut b = [0u8; 8];
            win.get(&mut b, 1, 0).unwrap();
        }
        win.fence().unwrap();
        win.free(ctx);
    });
    assert!(fabric.shadow().flagged(RaceClass::PutGet) >= 1, "{}", fabric.shadow().report());
}

#[test]
fn acc_vs_put_non_atomic_overlap_is_flagged() {
    let (_out, fabric) = racy_universe(2).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.fence().unwrap();
        if ctx.rank() == 0 {
            win.accumulate(&1u64.to_le_bytes(), NumKind::U64, MpiOp::Sum, 0, 0).unwrap();
        } else {
            win.put(&[9u8; 8], 0, 0).unwrap();
        }
        win.fence().unwrap();
        win.free(ctx);
    });
    assert!(fabric.shadow().flagged(RaceClass::AccMixed) >= 1, "{}", fabric.shadow().report());
}

#[test]
fn mixed_op_accumulate_overlap_is_flagged_same_op_is_not() {
    // Same op (both Sum): permitted by the MPI accumulate rules.
    let (_out, fabric) = racy_universe(2).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.fence().unwrap();
        win.accumulate(&1u64.to_le_bytes(), NumKind::U64, MpiOp::Sum, 0, 0).unwrap();
        win.fence().unwrap();
        win.free(ctx);
    });
    assert_eq!(fabric.shadow().total_flagged(), 0, "{}", fabric.shadow().report());

    // Mixed ops (Sum vs Min): non-atomic with respect to each other.
    let (_out, fabric) = racy_universe(2).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.fence().unwrap();
        let op = if ctx.rank() == 0 { MpiOp::Sum } else { MpiOp::Min };
        win.accumulate(&1u64.to_le_bytes(), NumKind::U64, op, 0, 0).unwrap();
        win.fence().unwrap();
        win.free(ctx);
    });
    assert!(fabric.shadow().flagged(RaceClass::AccOps) >= 1, "{}", fabric.shadow().report());
}

#[test]
fn local_store_vs_remote_put_is_flagged() {
    let (_out, fabric) = racy_universe(2).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.fence().unwrap();
        if ctx.rank() == 0 {
            win.put(&[3u8; 8], 1, 0).unwrap();
        } else {
            // Local store to the exposed bytes in the same epoch (the
            // separate-model conflict).
            win.write_local(0, &[4u8; 8]);
        }
        win.fence().unwrap();
        win.free(ctx);
    });
    assert!(fabric.shadow().flagged(RaceClass::LocalRace) >= 1, "{}", fabric.shadow().report());
}

#[test]
fn conflicting_writes_under_shared_locks_are_flagged_as_lock_mode() {
    let (_out, fabric) = racy_universe(2).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.lock(LockType::Shared, 0).unwrap();
        // Hold both shared sessions open simultaneously, then write the
        // same bytes — exclusive locks were required.
        ctx.barrier();
        win.put(&[ctx.rank() as u8 + 1; 8], 0, 0).unwrap();
        win.unlock(0).unwrap();
        ctx.barrier();
        win.free(ctx);
    });
    assert!(fabric.shadow().flagged(RaceClass::LockMode) >= 1, "{}", fabric.shadow().report());
}

#[test]
fn free_with_open_epoch_is_flagged_use_after_free() {
    let (_out, fabric) = racy_universe(2).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.lock_all().unwrap();
        // Freeing with the passive epoch still open: unsynchronized.
        win.free(ctx);
    });
    assert!(fabric.shadow().flagged(RaceClass::UseAfterFree) >= 1, "{}", fabric.shadow().report());
}

// ----------------------------------------------------------- report content

#[test]
fn report_names_both_conflicting_accesses() {
    let (_out, fabric) = racy_universe(2).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.fence().unwrap();
        win.put(&[ctx.rank() as u8 + 1; 4], 0, 4).unwrap();
        win.fence().unwrap();
        win.free(ctx);
    });
    let viols = fabric.shadow().violations();
    assert!(!viols.is_empty());
    let msg = viols[0].to_string();
    // Window id, byte range, both origins, and both access kinds.
    assert!(msg.contains("racecheck[put_put] win"), "{msg}");
    assert!(msg.contains("bytes [4, 8)"), "{msg}");
    assert!(msg.contains("put by rank 0"), "{msg}");
    assert!(msg.contains("put by rank 1"), "{msg}");
    assert!(msg.contains("epoch"), "{msg}");
    // The summary block names the class and the total.
    let report = fabric.shadow().report();
    assert!(report.contains("put_put"), "{report}");
    assert!(report.contains("racecheck"), "{report}");
}

#[test]
fn race_reports_reach_telemetry() {
    let (_out, fabric) = racy_universe(2).trace(64).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.fence().unwrap();
        win.put(&[1u8; 8], 0, 0).unwrap();
        win.fence().unwrap();
        win.free(ctx);
    });
    use fompi_fabric::telemetry::EventKind;
    assert!(fabric.telemetry().stats(EventKind::RaceReport).count() >= 1);
}

// --------------------------------------------- legal idioms must stay clean

/// The canonical `init → barrier → epoch` idiom (hashtable, milc):
/// pre-collective local stores are ordered before post-collective remote
/// epochs by the process synchronisation itself.
#[test]
fn local_init_then_barrier_then_epoch_is_clean() {
    let (_out, fabric) = racy_universe(2).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.write_local(0, &[1u8; 16]);
        ctx.barrier();
        win.lock_all().unwrap();
        let peer = (ctx.rank() + 1) % 2;
        let mut old = [0u8; 8];
        win.fetch_and_op(&1u64.to_le_bytes(), &mut old, NumKind::U64, MpiOp::Sum, peer, 0).unwrap();
        win.flush_all().unwrap();
        win.unlock_all().unwrap();
        ctx.barrier();
        let mut b = [0u8; 8];
        win.read_local(0, &mut b);
        win.free(ctx);
    });
    assert_eq!(fabric.shadow().total_flagged(), 0, "{}", fabric.shadow().report());
}

/// The paper's flag-notification idiom (the milc RMA backend): producer
/// puts, flushes, then FAAs the consumer's flag; the consumer polls its
/// own flag with an atomic NoOp read — the unified-model `win_sync`
/// equivalent — and only then reads the data locally.
#[test]
fn flag_polling_handoff_is_clean() {
    let (_out, fabric) = racy_universe(2).launch(|ctx| {
        let win = Win::allocate(ctx, 64, 1).unwrap();
        win.lock_all().unwrap();
        if ctx.rank() == 0 {
            win.put(&[7u8; 8], 1, 8).unwrap();
            win.flush_all().unwrap();
            let mut old = [0u8; 8];
            win.fetch_and_op(&1u64.to_le_bytes(), &mut old, NumKind::U64, MpiOp::Sum, 1, 0)
                .unwrap();
        } else {
            loop {
                let mut cur = [0u8; 8];
                win.fetch_and_op(&[], &mut cur, NumKind::U64, MpiOp::NoOp, 1, 0).unwrap();
                if u64::from_le_bytes(cur) >= 1 {
                    break;
                }
                std::thread::yield_now();
            }
            let mut b = [0u8; 8];
            win.read_local(8, &mut b);
            assert_eq!(b, [7u8; 8]);
        }
        win.unlock_all().unwrap();
        ctx.barrier();
        win.free(ctx);
    });
    assert_eq!(fabric.shadow().total_flagged(), 0, "{}", fabric.shadow().report());
}

// -------------------------------------------------------------- panic mode

#[test]
#[should_panic(expected = "rank thread panicked")]
fn panic_mode_aborts_on_first_violation() {
    let _ = Universe::new(2)
        .node_size(1)
        .model(CostModel::free())
        .racecheck(RacecheckMode::Panic)
        .launch(|ctx| {
            let win = Win::allocate(ctx, 64, 1).unwrap();
            win.fence().unwrap();
            win.put(&[ctx.rank() as u8 + 1; 8], 0, 0).unwrap();
            // No trailing synchronisation: the non-panicking rank must not
            // block on a collective its peer will never reach.
        });
}

// ----------------------------------------------------- false-positive gate

/// Every soak protocol is synchronisation-correct by construction: under
/// `RacecheckMode::Panic` any flag is a checker false positive (the rank
/// thread would abort and fail the launch).
#[test]
fn all_soak_protocols_are_clean_under_panic_mode() {
    for proto in Protocol::ALL {
        for (i, &seed) in seeds(0xACE_5EED, 3).iter().enumerate() {
            let plan = if i % 2 == 0 { FaultPlan::disabled() } else { FaultPlan::light(0) };
            let out = run_case_racecheck(proto, 4, 3, seed, plan, Some(RacecheckMode::Panic));
            assert!(out.passed(), "{} seed {seed:#x}: {:?}", proto.name(), out.violations);
            assert_eq!(out.raceflags, 0, "{} seed {seed:#x}: checker false positive", proto.name());
        }
    }
}
