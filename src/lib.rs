//! # fompi-repro — umbrella crate
//!
//! Re-exports the whole reproduction workspace of *Enabling
//! Highly-Scalable Remote Memory Access Programming with MPI-3 One Sided*
//! (Gerstenberger, Besta, Hoefler; SC'13) under one roof, for the examples
//! and the cross-crate integration tests.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`fabric`]  | `fompi-fabric`  | simulated DMAPP/XPMEM RDMA fabric |
//! | [`runtime`] | `fompi-runtime` | rank threads, nodes, internal collectives |
//! | [`fompi`]   | `fompi`         | the MPI-3 RMA implementation (the paper's contribution) |
//! | [`msg`]     | `fompi-msg`     | MPI-1/2.2 message-passing baseline |
//! | [`pgas`]    | `fompi-pgas`    | UPC / Fortran-coarray baseline |
//! | [`simnet`]  | `fompi-simnet`  | large-scale discrete-event simulation |
//! | [`txn`]     | `fompi-txn`     | versioned cells, optimistic multi-key commit |
//! | [`apps`]    | `fompi-apps`    | hashtable, DSDE, 3-D FFT, MILC proxy, KV store |
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use fompi;
pub use fompi_apps as apps;
pub use fompi_fabric as fabric;
pub use fompi_msg as msg;
pub use fompi_pgas as pgas;
pub use fompi_runtime as runtime;
pub use fompi_simnet as simnet;
pub use fompi_txn as txn;
